// cachedPIDMap: the per-GPU topology-page cache of Section 3.3.
//
// When WABuf and the streaming buffers leave device memory free (BFS-like
// algorithms have tiny WA), GTS caches topology pages there so repeatedly
// visited pages skip the PCI-E copy. LRU by default; FIFO is provided for
// the ablation called out in DESIGN.md.
#ifndef GTS_CORE_PAGE_CACHE_H_
#define GTS_CORE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/event_log.h"
#include "analysis/sync/sync.h"
#include "common/status.h"
#include "gpu/device.h"
#include "graph/types.h"
#include "obs/metrics.h"

namespace gts {

/// Replacement policy.
///
/// BFS-like algorithms sweep the frontier's pages cyclically, which is the
/// pathological case for classic LRU/FIFO (the cache evicts exactly what
/// the next level needs, hit rate stays ~0 until everything fits). kPinned
/// fills once and never evicts, giving the linear hit rate ~B/(S+L) the
/// paper reports in Figure 11 -- so it is the engine default, with LRU and
/// FIFO kept for the ablation benchmark.
enum class CachePolicy : uint8_t { kPinned, kLru, kFifo };

std::string_view CachePolicyName(CachePolicy policy);

/// Device-memory page cache for one GPU.
///
/// Holds real page copies in device memory (so kernels can run against
/// them) and tracks hit statistics for Figure 11.
///
/// Thread-safety: every public method is safe to call concurrently (the
/// engine's stream worker threads Insert while the main loop looks pages
/// up). Page bytes escape the cache lock only through a Pin, which holds a
/// refcount that eviction respects -- see Lookup vs LookupInto below.
class PageCache {
 public:
  /// RAII read lease on one cached page.
  ///
  /// While a Pin is alive the page cannot be evicted, so data() stays valid
  /// without holding the cache mutex (kernels run against it directly).
  /// Move-only; releasing (destruction, assignment, or Release()) unpins.
  /// Lifetime rule: every Pin must be released before its PageCache is
  /// destroyed -- the cache aborts on outstanding pins in its destructor
  /// rather than letting a stale handle dangle.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    /// True when the lookup hit and the lease is still held.
    bool valid() const { return data_ != nullptr; }
    explicit operator bool() const { return valid(); }

    /// Device bytes of the pinned page; stable until Release(). Requires
    /// valid().
    const uint8_t* data() const { return data_; }
    PageId page_id() const { return pid_; }

    /// Drops the lease early (idempotent); the page becomes evictable.
    void Release();

   private:
    friend class PageCache;
    Pin(PageCache* cache, PageId pid, const uint8_t* data)
        : cache_(cache), pid_(pid), data_(data) {}

    PageCache* cache_ = nullptr;
    PageId pid_ = 0;
    const uint8_t* data_ = nullptr;
#if GTS_SYNC_CHECK_ENABLED
    /// Thread that acquired the lease (LockRegistry pin-across-safe-point
    /// rule); pins may be *released* on another thread.
    std::thread::id sync_owner_{};
#endif
  };

  /// Reserves space for up to `capacity_bytes` of pages of `page_size`
  /// bytes each on `device`. A zero capacity disables the cache. With a
  /// `registry`, lookups/hits/inserts/backpressure are also published as
  /// `<metric_prefix>.*` counters (cumulative across cache lifetimes,
  /// since one engine rebuilds its caches per run); the registry must
  /// outlive the cache.
  PageCache(gpu::Device* device, uint64_t capacity_bytes, uint64_t page_size,
            CachePolicy policy, obs::MetricsRegistry* registry = nullptr,
            std::string_view metric_prefix = "cache");

  /// Aborts if any Pin is still outstanding (a live Pin would otherwise
  /// dangle into freed device memory).
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Max pages the cache can hold.
  size_t capacity_pages() const { return capacity_pages_; }
  size_t size() const {
    analysis::sync::Lock lock(mu_);
    return entries_.size();
  }
  /// Outstanding Pin handles across all pages.
  size_t pinned() const {
    analysis::sync::Lock lock(mu_);
    return total_pins_;
  }

  /// Looks up a page; on a hit returns a Pin leasing its device bytes (an
  /// invalid Pin on miss). Counts a lookup and (on success) a hit;
  /// refreshes recency under LRU. Use this when the caller reads the page
  /// in place for an extended time (e.g. running a kernel against cached
  /// device memory): the Pin blocks eviction instead of escaping a raw
  /// pointer that a concurrent Insert could free mid-read.
  [[nodiscard]] Pin Lookup(PageId pid);

  /// Like Lookup, but copies the page into `dst` (page_size bytes) under
  /// the cache lock. Prefer this copy-based fast path when the caller
  /// needs its own snapshot anyway (host-side staging): it takes no lease,
  /// so it can never contribute to cache-full backpressure.
  [[nodiscard]] bool LookupInto(PageId pid, uint8_t* dst);

  /// True if present (and not stale), without touching stats or recency
  /// (Algorithm 1 consults the *host copy* of cachedPIDMap when routing).
  bool Contains(PageId pid) const {
    analysis::sync::Lock lock(mu_);
    auto it = entries_.find(pid);
    return it != entries_.end() && !it->second.stale;
  }

  /// Inserts a copy of `bytes` for `pid`, evicting per policy when full.
  /// Eviction skips pinned pages; when every resident page is pinned the
  /// insert fails with CapacityExceeded (counted in insert_backpressure())
  /// and the engine keeps the page on the streaming SPBuf/LPBuf path.
  /// No-op when the cache is disabled or the page is already present
  /// (including a stale-but-pinned copy, which must drain first).
  /// `version` tags the entry with the page's ingest version (0 for a
  /// frozen graph).
  [[nodiscard]] Status Insert(PageId pid, const uint8_t* bytes,
                              uint64_t version = 0);

  /// Ingest version the resident copy of `pid` was inserted with; 0 when
  /// the page is not resident (or predates ingestion).
  uint64_t VersionOf(PageId pid) const;

  /// Drops `pid`'s cached copy because a newer page version was
  /// published. Unpinned (or absent): the entry is erased and true is
  /// returned. Pinned: the entry is marked stale -- the in-flight reader
  /// keeps its old-version snapshot, new lookups miss, and the entry is
  /// erased when the last pin releases -- and false is returned. Either
  /// way a kInvalidated pin event is logged for resident entries; after
  /// it, pinning `pid` again without a fresh kInserted violates the
  /// validator's I1 rule.
  [[nodiscard]] bool Invalidate(PageId pid);

  /// Streams pin/insert/evict events into `log` (pass null to detach) for
  /// the gts::analysis pin-lifetime validator. The log must outlive the
  /// cache or be detached first.
  void BindPinLog(analysis::PinEventLog* log) {
    analysis::sync::Lock lock(mu_);
    pin_log_ = log;
  }

  uint64_t lookups() const {
    analysis::sync::Lock lock(mu_);
    return lookups_;
  }
  uint64_t hits() const {
    analysis::sync::Lock lock(mu_);
    return hits_;
  }
  /// Inserts rejected because every evictable page was pinned.
  uint64_t insert_backpressure() const {
    analysis::sync::Lock lock(mu_);
    return insert_backpressure_;
  }
  double hit_rate() const {
    analysis::sync::Lock lock(mu_);
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(hits_) /
                               static_cast<double>(lookups_);
  }
  void ResetStats() {
    analysis::sync::Lock lock(mu_);
    lookups_ = 0;
    hits_ = 0;
    insert_backpressure_ = 0;
  }

 private:
  struct Entry {
    gpu::DeviceBuffer buffer;
    std::list<PageId>::iterator order_it;
    uint32_t pins = 0;
    uint64_t version = 0;  ///< ingest page version at insert time
    /// Invalidated while pinned: lookups miss, erased at last Unpin.
    bool stale = false;
  };

  /// Stats/recency-updating find; requires mu_ held.
  Entry* FindLocked(PageId pid) GTS_REQUIRES(mu_);
  /// Pin::Release hook.
  void Unpin(PageId pid);

  mutable analysis::sync::Mutex mu_{"cache.page_cache",
                                    analysis::sync::level::kCache};
  gpu::Device* device_;
  uint64_t page_size_;
  size_t capacity_pages_;
  CachePolicy policy_;

  // Registry handles (nullptr when no registry was given).
  obs::Counter* lookups_metric_ = nullptr;
  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* inserts_metric_ = nullptr;
  obs::Counter* backpressure_metric_ = nullptr;

  analysis::PinEventLog* pin_log_ = nullptr;

  std::unordered_map<PageId, Entry> entries_ GTS_GUARDED_BY(mu_);
  // For LRU: front = most recent. For FIFO: front = newest insert; eviction
  // takes from the back in both policies (skipping pinned pages).
  std::list<PageId> order_ GTS_GUARDED_BY(mu_);

  size_t total_pins_ GTS_GUARDED_BY(mu_) = 0;
  uint64_t lookups_ GTS_GUARDED_BY(mu_) = 0;
  uint64_t hits_ GTS_GUARDED_BY(mu_) = 0;
  uint64_t insert_backpressure_ GTS_GUARDED_BY(mu_) = 0;
};

}  // namespace gts

#endif  // GTS_CORE_PAGE_CACHE_H_
