// cachedPIDMap: the per-GPU topology-page cache of Section 3.3.
//
// When WABuf and the streaming buffers leave device memory free (BFS-like
// algorithms have tiny WA), GTS caches topology pages there so repeatedly
// visited pages skip the PCI-E copy. LRU by default; FIFO is provided for
// the ablation called out in DESIGN.md.
#ifndef GTS_CORE_PAGE_CACHE_H_
#define GTS_CORE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "gpu/device.h"
#include "graph/types.h"

namespace gts {

/// Replacement policy.
///
/// BFS-like algorithms sweep the frontier's pages cyclically, which is the
/// pathological case for classic LRU/FIFO (the cache evicts exactly what
/// the next level needs, hit rate stays ~0 until everything fits). kPinned
/// fills once and never evicts, giving the linear hit rate ~B/(S+L) the
/// paper reports in Figure 11 -- so it is the engine default, with LRU and
/// FIFO kept for the ablation benchmark.
enum class CachePolicy : uint8_t { kPinned, kLru, kFifo };

std::string_view CachePolicyName(CachePolicy policy);

/// Device-memory page cache for one GPU.
///
/// Holds real page copies in device memory (so kernels can run against
/// them) and tracks hit statistics for Figure 11.
class PageCache {
 public:
  /// Reserves space for up to `capacity_bytes` of pages of `page_size`
  /// bytes each on `device`. A zero capacity disables the cache.
  PageCache(gpu::Device* device, uint64_t capacity_bytes, uint64_t page_size,
            CachePolicy policy);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Max pages the cache can hold.
  size_t capacity_pages() const { return capacity_pages_; }
  size_t size() const { return entries_.size(); }

  /// Looks up a page; returns its device bytes or nullptr. Counts a lookup
  /// and (on success) a hit; refreshes recency under LRU. Thread-safe, but
  /// the returned pointer is only stable until the next Insert; callers
  /// that overlap lookups with inserts must use LookupInto instead.
  const uint8_t* Lookup(PageId pid);

  /// Like Lookup, but copies the page into `dst` (page_size bytes) under
  /// the cache lock, so concurrent inserts/evictions cannot invalidate it.
  bool LookupInto(PageId pid, uint8_t* dst);

  /// True if present, without touching stats or recency (Algorithm 1
  /// consults the *host copy* of cachedPIDMap when routing).
  bool Contains(PageId pid) const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.count(pid) != 0;
  }

  /// Inserts a copy of `bytes` for `pid`, evicting per policy when full.
  /// No-op when the cache is disabled or the page is already present.
  Status Insert(PageId pid, const uint8_t* bytes);

  uint64_t lookups() const { return lookups_; }
  uint64_t hits() const { return hits_; }
  double hit_rate() const {
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(hits_) /
                               static_cast<double>(lookups_);
  }
  void ResetStats() {
    lookups_ = 0;
    hits_ = 0;
  }

 private:
  const uint8_t* LookupLocked(PageId pid);

  mutable std::mutex mu_;
  gpu::Device* device_;
  uint64_t page_size_;
  size_t capacity_pages_;
  CachePolicy policy_;

  struct Entry {
    gpu::DeviceBuffer buffer;
    std::list<PageId>::iterator order_it;
  };
  std::unordered_map<PageId, Entry> entries_;
  // For LRU: front = most recent. For FIFO: front = newest insert; eviction
  // takes from the back in both policies.
  std::list<PageId> order_;

  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace gts

#endif  // GTS_CORE_PAGE_CACHE_H_
