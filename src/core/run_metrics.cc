#include "core/run_metrics.h"

namespace gts {

void RunMetrics::Accumulate(const RunMetrics& increment) {
  sim_seconds += increment.sim_seconds;
  levels += increment.levels;
  pages_streamed += increment.pages_streamed;
  transfer_bytes += increment.transfer_bytes;
  direct_pages += increment.direct_pages;
  direct_bytes += increment.direct_bytes;
  cpu_pages += increment.cpu_pages;
  sp_kernel_calls += increment.sp_kernel_calls;
  lp_kernel_calls += increment.lp_kernel_calls;
  cache_lookups += increment.cache_lookups;
  cache_hits += increment.cache_hits;
  cache_backpressure += increment.cache_backpressure;
  shared_page_hits += increment.shared_page_hits;
  work += increment.work;
  io.buffer_hits += increment.io.buffer_hits;
  io.device_reads += increment.io.device_reads;
  io.bytes_read += increment.io.bytes_read;
  io_queue += increment.io_queue;
  pages_skipped += increment.pages_skipped;
  ingest_updates_applied += increment.ingest_updates_applied;
  ingest_deltas_flushed += increment.ingest_deltas_flushed;
  ingest_compactions += increment.ingest_compactions;
  ingest_overlay_hits += increment.ingest_overlay_hits;
  if (increment.cpu_lane_work.size() > cpu_lane_work.size()) {
    cpu_lane_work.resize(increment.cpu_lane_work.size());
  }
  for (size_t i = 0; i < increment.cpu_lane_work.size(); ++i) {
    cpu_lane_work[i] += increment.cpu_lane_work[i];
  }
  transfer_busy += increment.transfer_busy;
  kernel_busy += increment.kernel_busy;
  storage_busy += increment.storage_busy;
  level_pages.insert(level_pages.end(), increment.level_pages.begin(),
                     increment.level_pages.end());
  if (!increment.timeline.ops.empty()) timeline = increment.timeline;
  analysis.Accumulate(increment.analysis);
}

}  // namespace gts
