#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

namespace gts {

SimTime PageRankLikeCost(const PageRankCostInputs& in, const TimeModel& tm) {
  const double n = std::max(1, in.num_gpus);
  const double chunk = 2.0 * static_cast<double>(in.wa_bytes) / tm.c1;
  const double stream =
      static_cast<double>(in.ra_bytes + in.sp_bytes + in.lp_bytes) /
      (tm.c2 * n);
  const double calls = tm.kernel_launch_overhead *
                       (static_cast<double>(in.num_pages) / n);
  const double sync = tm.sync_overhead * n;
  return chunk + stream + calls + in.last_kernel_seconds + sync;
}

SimTime BfsLikeCost(const BfsCostInputs& in, const TimeModel& tm) {
  const double n = std::max(1, in.num_gpus);
  const double dskew = std::clamp(in.dskew, 1.0 / n, 1.0);
  const double miss = 1.0 - std::clamp(in.hit_rate, 0.0, 1.0);
  double total = 2.0 * static_cast<double>(in.wa_bytes) / tm.c1;
  for (const BfsLevelCost& level : in.levels) {
    total += static_cast<double>(level.bytes) * miss / (tm.c2 * n * dskew);
    total += tm.kernel_launch_overhead *
             (static_cast<double>(level.pages) / (n * dskew));
  }
  return total;
}

double ApproximateHitRate(uint64_t cache_pages, uint64_t total_pages) {
  if (total_pages == 0) return 0.0;
  return std::min(1.0, static_cast<double>(cache_pages) /
                           static_cast<double>(total_pages));
}

int SuggestNumStreams(SimTime transfer_seconds, SimTime kernel_seconds,
                      int max_streams) {
  if (transfer_seconds <= 0.0 || kernel_seconds <= 0.0) return max_streams;
  const double ratio = kernel_seconds / transfer_seconds;
  const int k = 1 + static_cast<int>(std::ceil(ratio));
  return std::clamp(k, 1, max_streams);
}

uint64_t DirectTransferBytes(const TransferLevelStats& s,
                             const TimeModel& tm) {
  const uint64_t line = static_cast<uint64_t>(
      std::max(1.0, tm.direct_line_bytes));
  // First line per active vertex covers its slot, the adjacency-size
  // header, and the leading entries; entries beyond that spill into
  // whole additional lines (aggregate estimate across the level).
  const uint64_t entry_bytes =
      static_cast<uint64_t>(s.active_edges) * s.entry_bytes;
  const uint64_t lines = s.active_vertices + entry_bytes / line;
  return lines * line;
}

SimTime PageStreamLevelSeconds(const TransferLevelStats& s,
                               const TimeModel& tm) {
  return static_cast<double>((s.sp_pages + s.lp_pages) * s.page_size) /
         tm.c2;
}

SimTime DirectLevelSeconds(const TransferLevelStats& s, const TimeModel& tm) {
  const double sp = static_cast<double>(DirectTransferBytes(s, tm)) /
                        tm.direct_bandwidth +
                    static_cast<double>(s.active_vertices) *
                        tm.direct_fetch_latency;
  const double lp =
      static_cast<double>(s.lp_pages * s.page_size) / tm.c2;
  return sp + lp;
}

bool PreferDirectTransfer(const TransferLevelStats& s, const TimeModel& tm) {
  if (s.active_vertices == 0 || s.sp_pages == 0) return false;
  return DirectLevelSeconds(s, tm) < PageStreamLevelSeconds(s, tm);
}

}  // namespace gts
