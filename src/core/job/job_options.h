// Per-job parameters of the gts::JobScheduler serving API.
//
// JobOptions subsumes the old RunOptions block (the deprecation alias
// in run_report.h has since been removed): the per-algorithm tuning
// knobs the Run*Gts drivers always took, plus
// the scheduler-era fields -- query identity (source vertex, level cap)
// moves out of positional arguments and into the options block, and
// `priority` feeds the scheduler's weighted round-robin fairness policy.
#ifndef GTS_CORE_JOB_JOB_OPTIONS_H_
#define GTS_CORE_JOB_JOB_OPTIONS_H_

#include <cstdint>

#include "graph/types.h"

namespace gts {

/// Tuning knobs shared by the Run*Gts drivers and JobScheduler::Submit.
/// Each driver documents the fields it reads; the rest are ignored.
struct JobOptions {
  int iterations = 1;         ///< PageRank / RWR fixed-iteration loops
  int max_iterations = 1000;  ///< WCC label-propagation fixpoint cap
  int max_hops = 256;         ///< Radius sketch-propagation cap
  uint32_t hops = 1;          ///< k-hop neighborhood depth
  uint64_t seed = 7;          ///< Radius FM-sketch seed
  float damping = 0.85f;      ///< PageRank damping factor
  float restart_prob = 0.15f; ///< RWR restart probability

  // --- Scheduler-era fields (ignored by the legacy positional APIs) ---

  /// Seeds the frontier for traversal kernels (host WA must already mark
  /// it, e.g. LV[source] = 0). Required for traversal submissions.
  VertexId source = kInvalidVertexId;
  /// A non-negative value truncates a traversal after that many level
  /// passes (k-hop neighborhood queries); -1 uses GtsOptions::max_levels.
  int max_levels_override = -1;
  /// Weighted round-robin share of the merged per-pass page order when
  /// jobs run concurrently, and the admission-control ordering when
  /// device WA memory is oversubscribed. Higher = more favored; values
  /// < 1 are clamped to 1.
  int priority = 1;

  /// Per-job cap on PCI-E topology-transfer bytes (RunMetrics::
  /// transfer_bytes). 0 = unlimited. Checked at pass/level boundaries
  /// (the engine's cancellation points): a job at or over its quota
  /// retires with Status::ResourceExhausted and bumps the
  /// `jobs.quota_deferrals` counter. Work already absorbed (completed
  /// levels) is not rolled back -- resubmit to continue.
  uint64_t max_streamed_bytes = 0;

  /// Pin the graph version published at run start for the whole job:
  /// with streaming ingestion enabled the engine then skips mid-run
  /// publishes, so every level/pass of this job reads one consistent
  /// snapshot epoch. In a batch epoch one pinning job pins the epoch
  /// for all its concurrent jobs (they share staged pages). Updates
  /// appended while the job runs publish at the next safe point after
  /// it finishes. No effect when ingestion is disabled.
  bool pin_graph_version = false;
};

}  // namespace gts

#endif  // GTS_CORE_JOB_JOB_OPTIONS_H_
