#include "core/job/job_scheduler.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/engine.h"

namespace gts {

/// The shared job record behind a JobHandle: scheduler bookkeeping plus
/// the engine-facing JobExec. Guarded by the scheduler's mu_ except
/// exec->cancel (atomic) and the engine-owned exec runtime fields, which
/// only the driver thread touches while the job is kRunning.
struct JobHandle::Record {
  uint64_t id = 0;
  JobScheduler* scheduler = nullptr;
  JobState state = JobState::kQueued;
  std::unique_ptr<JobExec> exec;
  bool has_result = false;
  Status status;
  RunReport report;
};

uint64_t JobHandle::id() const { return rec_ != nullptr ? rec_->id : 0; }

JobState JobHandle::state() const {
  if (rec_ == nullptr) return JobState::kDone;
  analysis::sync::Lock lock(rec_->scheduler->mu_);
  return rec_->state;
}

Result<RunReport> JobHandle::Wait() {
  if (rec_ == nullptr) {
    return Status::InvalidArgument("Wait() on an invalid JobHandle");
  }
  rec_->scheduler->DriveUntilDone(rec_);
  analysis::sync::Lock lock(rec_->scheduler->mu_);
  if (!rec_->status.ok()) return rec_->status;
  return rec_->report;
}

bool JobHandle::Cancel() {
  if (rec_ == nullptr) return false;
  JobScheduler* sched = rec_->scheduler;
  analysis::sync::Lock lock(sched->mu_);
  if (rec_->state == JobState::kDone) return false;
  rec_->exec->cancel.store(true, std::memory_order_relaxed);
  if (rec_->state == JobState::kQueued) {
    auto& queue = sched->queue_;
    queue.erase(std::remove(queue.begin(), queue.end(), rec_), queue.end());
    rec_->state = JobState::kDone;
    rec_->status = Status::Cancelled("job cancelled while queued");
    rec_->has_result = true;
    sched->engine_->metrics_registry()->GetCounter("jobs.cancelled").Add();
    sched->cv_.notify_all();
  }
  // A running job is cancelled at its next pass boundary by the engine.
  return true;
}

std::optional<Result<RunReport>> JobHandle::TryJoin() {
  if (rec_ == nullptr) {
    return Result<RunReport>(
        Status::InvalidArgument("TryJoin() on an invalid JobHandle"));
  }
  analysis::sync::Lock lock(rec_->scheduler->mu_);
  if (rec_->state != JobState::kDone) return std::nullopt;
  if (!rec_->status.ok()) return Result<RunReport>(rec_->status);
  return Result<RunReport>(rec_->report);
}

JobScheduler::JobScheduler(GtsEngine* engine) : engine_(engine) {}

JobScheduler::~JobScheduler() = default;

JobHandle JobScheduler::Submit(GtsKernel* kernel, JobOptions options) {
  return SubmitPass(kernel, {}, 0, options, /*is_pass=*/false);
}

JobHandle JobScheduler::SubmitPass(GtsKernel* kernel,
                                   std::vector<PageId> pages, uint32_t level,
                                   JobOptions options) {
  return SubmitPass(kernel, std::move(pages), level, options,
                    /*is_pass=*/true);
}

JobHandle JobScheduler::SubmitPass(GtsKernel* kernel,
                                   std::vector<PageId> pages, uint32_t level,
                                   JobOptions options, bool is_pass) {
  // The record is fully built before it becomes visible in the queue --
  // a concurrent Wait() may start driving the moment it is enqueued.
  auto rec = std::make_shared<JobHandle::Record>();
  rec->scheduler = this;
  rec->exec = std::make_unique<JobExec>();
  rec->exec->kernel = kernel;
  rec->exec->options = options;
  rec->exec->is_pass = is_pass;
  rec->exec->pages = std::move(pages);
  rec->exec->pass_level = level;
  analysis::sync::Lock lock(mu_);
  rec->id = next_id_++;
  if (kernel == nullptr) {
    rec->state = JobState::kDone;
    rec->status = Status::InvalidArgument("Submit() needs a kernel");
    rec->has_result = true;
    return JobHandle(std::move(rec));
  }
  queue_.push_back(rec);
  engine_->metrics_registry()->GetCounter("jobs.submitted").Add();
  cv_.notify_all();
  return JobHandle(std::move(rec));
}

Result<RunMetrics> JobScheduler::RunJob(GtsKernel* kernel, RunReport* report,
                                        JobOptions options) {
  JobHandle handle = Submit(kernel, options);
  auto result = handle.Wait();
  if (!result.ok()) return result.status();
  report->Accumulate(result->metrics);
  report->snapshot = result->snapshot;
  return result->metrics;
}

Result<RunMetrics> JobScheduler::RunPassJob(GtsKernel* kernel,
                                            RunReport* report,
                                            std::vector<PageId> pages,
                                            uint32_t level,
                                            JobOptions options) {
  JobHandle handle = SubmitPass(kernel, std::move(pages), level, options);
  auto result = handle.Wait();
  if (!result.ok()) return result.status();
  report->Accumulate(result->metrics);
  report->snapshot = result->snapshot;
  return result->metrics;
}

size_t JobScheduler::queued_jobs() const {
  analysis::sync::Lock lock(mu_);
  return queue_.size();
}

Status JobScheduler::QuiesceIngest() {
  // Take the driver role without running a batch: once driver_active_ is
  // ours no epoch is executing, so the engine can quiesce with nothing
  // pinned or staged. Waiters for queued jobs are woken afterwards.
  analysis::sync::UniqueLock lk(mu_);
  while (driver_active_) cv_.wait(lk);
  driver_active_ = true;
  lk.unlock();
  const Status status = engine_->QuiesceIngestExclusive();
  lk.lock();
  driver_active_ = false;
  cv_.notify_all();
  return status;
}

void JobScheduler::DriveUntilDone(
    const std::shared_ptr<JobHandle::Record>& rec) {
  analysis::sync::UniqueLock lk(mu_);
  for (;;) {
    if (rec->state == JobState::kDone) return;
    if (!driver_active_ && !queue_.empty()) {
      driver_active_ = true;
      RunCycle(lk);
      driver_active_ = false;
      cv_.notify_all();
      continue;
    }
    cv_.wait(lk);
  }
}

void JobScheduler::CompleteLocked(
    const std::shared_ptr<JobHandle::Record>& rec) {
  rec->state = JobState::kDone;
  rec->status = rec->exec->status;
  rec->has_result = true;
  if (rec->status.ok()) {
    rec->report.Accumulate(rec->exec->metrics);
    rec->report.snapshot = engine_->metrics_registry()->Snapshot();
  }
  auto& registry = *engine_->metrics_registry();
  if (rec->status.IsCancelled()) {
    registry.GetCounter("jobs.cancelled").Add();
  } else {
    registry.GetCounter("jobs.completed").Add();
  }
}

void JobScheduler::RunCycle(analysis::sync::UniqueLock& lk) {
  // Batch formation: cancelled-while-queued jobs retire immediately;
  // the rest are taken in priority order (stable, so FIFO within a
  // priority) up to max_concurrent_jobs.
  std::vector<std::shared_ptr<JobHandle::Record>> batch;
  {
    std::deque<std::shared_ptr<JobHandle::Record>> keep;
    for (auto& rec : queue_) {
      if (rec->exec->cancel.load(std::memory_order_relaxed)) {
        rec->exec->status = Status::Cancelled("job cancelled while queued");
        CompleteLocked(rec);
      } else {
        keep.push_back(rec);
      }
    }
    queue_ = std::move(keep);
  }
  const size_t max_jobs = static_cast<size_t>(
      std::max(1, engine_->options().max_concurrent_jobs));
  std::stable_sort(queue_.begin(), queue_.end(),
                   [](const auto& a, const auto& b) {
                     return std::max(1, a->exec->options.priority) >
                            std::max(1, b->exec->options.priority);
                   });
  while (!queue_.empty() && batch.size() < max_jobs) {
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  if (batch.empty()) return;
  for (auto& rec : batch) rec->state = JobState::kRunning;

  lk.unlock();
  if (batch.size() == 1) {
    JobExec* exec = batch[0]->exec.get();
    auto result = engine_->ExecuteJob(exec);
    exec->status = result.ok() ? Status::OK() : result.status();
    if (result.ok()) exec->metrics = std::move(result).value();
    exec->finished = true;
  } else {
    std::vector<JobExec*> execs;
    execs.reserve(batch.size());
    for (auto& rec : batch) execs.push_back(rec->exec.get());
    const Status batch_status = engine_->RunJobBatch(execs);
    GTS_CHECK(batch_status.ok()) << batch_status.ToString();
  }
  lk.lock();

  for (auto& rec : batch) {
    if (rec->exec->finished) {
      CompleteLocked(rec);
    } else {
      // Deferred by admission control: WA memory was oversubscribed.
      // Back to the queue front so the next cycle retries it first --
      // each cycle completes at least one job, so deferral cannot loop
      // forever (a job that cannot fit even alone fails instead).
      rec->state = JobState::kQueued;
      queue_.push_front(rec);
      engine_->metrics_registry()->GetCounter("jobs.deferred").Add();
    }
  }
  cv_.notify_all();
}

}  // namespace gts
