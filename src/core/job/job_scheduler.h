// The gts::JobScheduler serving API: concurrent multi-job execution over
// one GtsEngine with shared-topology streaming.
//
// Submit(kernel, options) enqueues a job and returns a JobHandle; the
// scheduler forms batches of up to GtsOptions::max_concurrent_jobs jobs
// (priority-ordered, FIFO within a priority) and executes each batch as
// one engine epoch in which every job owns a private WA partition and
// RunReport/metrics scope while the PageCache, the gts::io DeviceQueues,
// the dispatch pipeline, and the copy engines are shared. Per pass the
// engine merges the jobs' page demand into one PlanPass union, so a page
// streamed (or cache-resident) for one job services every job that wants
// it before it becomes eviction-candidate again -- two BFS jobs over the
// same graph stream each page once.
//
// Execution model: cooperative, driver-thread-per-batch. There is no
// background thread; the first thread to block in JobHandle::Wait()
// becomes the driver and runs whole batches to completion while later
// waiters park on a condition variable. Admission control: a job whose
// WA partition does not fit next to the already-admitted jobs' is
// deferred to the next batch (CapacityExceeded/ResourceExhausted-style
// backpressure -- queued jobs wait, never crash); a job that cannot fit
// even alone fails with the allocation error. Cancellation is checked at
// pass boundaries; a still-queued job cancels immediately.
//
// Single-job batches take the engine's legacy run path and therefore
// reproduce the pre-scheduler Run*Gts schedules byte for byte.
#ifndef GTS_CORE_JOB_JOB_SCHEDULER_H_
#define GTS_CORE_JOB_JOB_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/sync/sync.h"
#include "common/status.h"
#include "core/job/job_exec.h"
#include "core/job/job_options.h"
#include "core/run_report.h"
#include "graph/types.h"

namespace gts {

class GtsEngine;
class JobScheduler;

/// Lifecycle of a submitted job.
enum class JobState : uint8_t {
  kQueued,   ///< waiting for a batch slot (or for WA memory)
  kRunning,  ///< part of the active batch epoch
  kDone,     ///< result available (ok, failed, or cancelled)
};

/// Caller-side handle to one submitted job. Cheap to copy (shared
/// ownership of the job record); all methods are thread-safe.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return rec_ != nullptr; }
  uint64_t id() const;
  JobState state() const;

  /// Blocks until the job completes and returns its report. The calling
  /// thread may become the scheduler's driver: it executes whole batches
  /// (including other jobs' work) until this job is done. Waiting on an
  /// invalid handle returns InvalidArgument.
  Result<RunReport> Wait();

  /// Requests cancellation. A queued job completes immediately with
  /// Status::Cancelled; a running job is cancelled at its next pass
  /// boundary (its Wait() then returns Cancelled). Returns true if the
  /// job had not already finished, false otherwise.
  bool Cancel();

  /// Non-blocking: the job's result if it has completed, std::nullopt
  /// otherwise. Never drives the scheduler -- some thread must be in
  /// Wait() (or submitting more work) for queued jobs to progress.
  std::optional<Result<RunReport>> TryJoin();

 private:
  friend class JobScheduler;
  struct Record;
  explicit JobHandle(std::shared_ptr<Record> rec) : rec_(std::move(rec)) {}
  std::shared_ptr<Record> rec_;
};

/// The scheduler. One per engine (constructed by the engine; reach it
/// via GtsEngine::scheduler()). All methods are thread-safe.
class JobScheduler {
 public:
  explicit JobScheduler(GtsEngine* engine);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues one job: a complete traversal (options.source seeds the
  /// frontier) or one full scan pass, per the kernel's access pattern.
  JobHandle Submit(GtsKernel* kernel, JobOptions options = {});

  /// Enqueues a job streaming exactly `pages` as one pass at traversal
  /// level `level` (algorithm phases that drive their own page sets,
  /// e.g. the betweenness backward sweep).
  JobHandle SubmitPass(GtsKernel* kernel, std::vector<PageId> pages,
                       uint32_t level = 0, JobOptions options = {});

  /// Submit(...).Wait() folded into `report` exactly like the old
  /// Engine::RunInto: accumulates the increment, refreshes the snapshot,
  /// returns the per-job increment. The Run*Gts drivers are thin
  /// wrappers over this.
  Result<RunMetrics> RunJob(GtsKernel* kernel, RunReport* report,
                            JobOptions options = {});

  /// SubmitPass(...).Wait() folded into `report`; see RunJob().
  Result<RunMetrics> RunPassJob(GtsKernel* kernel, RunReport* report,
                                std::vector<PageId> pages, uint32_t level = 0,
                                JobOptions options = {});

  /// Drains and fully compacts the engine's streaming-ingestion state
  /// (gts::ingest) at a guaranteed safe point: the calling thread takes
  /// the driver role -- waiting for any active batch epoch to finish --
  /// so no running job observes the transition. After an OK return the
  /// device pages are bit-identical to a fresh build of the updated
  /// graph. Queued jobs resume afterwards; FailedPrecondition when
  /// GtsOptions::ingest.enabled is false.
  Status QuiesceIngest();

  /// Jobs waiting for a batch slot (diagnostics / tests).
  size_t queued_jobs() const;

 private:
  friend class JobHandle;

  /// Shared implementation of Submit/SubmitPass.
  JobHandle SubmitPass(GtsKernel* kernel, std::vector<PageId> pages,
                       uint32_t level, JobOptions options, bool is_pass);

  /// Blocks until `rec` completes, becoming the driver when no other
  /// thread is driving.
  void DriveUntilDone(const std::shared_ptr<JobHandle::Record>& rec);

  /// Forms and executes one batch. Entered with `lk` held and
  /// driver_active_ set; unlocks around engine work.
  void RunCycle(analysis::sync::UniqueLock& lk);

  /// Folds a finished exec into its record (state, status, report).
  void CompleteLocked(const std::shared_ptr<JobHandle::Record>& rec);

  GtsEngine* engine_;
  mutable analysis::sync::Mutex mu_{"job.scheduler",
                                    analysis::sync::level::kScheduler};
  analysis::sync::CondVar cv_;
  std::deque<std::shared_ptr<JobHandle::Record>> queue_ GTS_GUARDED_BY(mu_);
  bool driver_active_ GTS_GUARDED_BY(mu_) = false;
  uint64_t next_id_ GTS_GUARDED_BY(mu_) = 1;
};

}  // namespace gts

#endif  // GTS_CORE_JOB_JOB_SCHEDULER_H_
