// Per-job execution state of a JobScheduler batch epoch.
//
// A JobExec is the engine-facing half of a submitted job: what to run
// (kernel + options + optional explicit page set), the private state the
// job owns while concurrent jobs share the engine's streaming machinery
// (its WA partition per GPU, its frontier and per-GPU local nextPIDSets,
// its RunMetrics scope), and the lifecycle flags the scheduler reads at
// pass boundaries (admitted / finished / cancel).
//
// Single-job submissions never build a JobExec batch: the scheduler
// routes them through the engine's legacy run path, which reproduces the
// pre-scheduler schedule byte for byte.
#ifndef GTS_CORE_JOB_JOB_EXEC_H_
#define GTS_CORE_JOB_JOB_EXEC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/frontier.h"
#include "core/job/job_options.h"
#include "core/kernel.h"
#include "core/run_metrics.h"
#include "gpu/device.h"
#include "graph/types.h"

namespace gts {

/// One job's slice of a GPU while its batch epoch is active: the private
/// WA partition and traversal frontier contribution. Stream buffers, the
/// page cache, and the copy engines stay shared across the epoch's jobs.
struct JobGpuSlice {
  gpu::DeviceBuffer wa_buf;
  std::unique_ptr<PidSet> local_next;  ///< traversal jobs only
  VertexId wa_begin = 0;
  VertexId wa_end = 0;
  std::vector<WorkStats> stream_work;  ///< accumulated per stream
};

/// The engine-facing state of one submitted job. Owned by the scheduler's
/// JobRecord; mutated only by the engine while a batch epoch runs (the
/// scheduler's driver thread), except `cancel`, which any thread may set.
struct JobExec {
  GtsKernel* kernel = nullptr;
  JobOptions options;

  /// SubmitPass jobs: stream exactly these pages as one pass at
  /// `pass_level` (the betweenness backward sweep, k-core peeling).
  /// Empty + !is_pass = a full Run (traversal loop or full scan).
  bool is_pass = false;
  std::vector<PageId> pages;
  uint32_t pass_level = 0;

  /// Dense per-epoch index used to tag this job's timeline ops (trace
  /// lanes + the validator's J1 rule). -1 until the epoch admits the job.
  int32_t job_id = -1;

  // --- Batch-epoch runtime state (engine-owned) ---
  std::unique_ptr<PidSet> frontier;  ///< traversal jobs only
  int level = 0;
  uint64_t prev_updates = 0;  ///< for per-level WA-delta sizing
  bool admitted = false;
  bool participated = false;  ///< streamed pages in the current pass
  bool finished = false;
  Status status;
  RunMetrics metrics;
  std::vector<JobGpuSlice> gpus;  ///< one per GPU once admitted

  /// Set by JobHandle::Cancel from any thread; the engine checks it at
  /// pass boundaries and retires the job with Status::Cancelled.
  std::atomic<bool> cancel{false};

  bool traversal() const {
    return !is_pass &&
           kernel->access_pattern() == AccessPattern::kTraversal;
  }
};

}  // namespace gts

#endif  // GTS_CORE_JOB_JOB_EXEC_H_
