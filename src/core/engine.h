// The GTS framework engine (Algorithm 1).
//
// Run() executes a kernel over a PagedGraph: it places WA in (simulated)
// device memory, then streams topology pages and RA subvectors to the
// GPU(s) over k asynchronous streams, calling K_SP / K_LP per page. For
// BFS-like kernels it iterates level by level over the page-granular
// frontier (nextPIDSet) with the device page cache enabled; for
// PageRank-like kernels it makes one pass over every page (callers loop
// for multi-iteration algorithms).
//
// Execution is real (results come from actually running the kernels);
// elapsed time is computed by the deterministic discrete-event scheduler
// against the machine's TimeModel (see gpu/schedule.h).
#ifndef GTS_CORE_ENGINE_H_
#define GTS_CORE_ENGINE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/frontier.h"
#include "core/kernel.h"
#include "core/machine_config.h"
#include "core/page_cache.h"
#include "gpu/device.h"
#include "gpu/schedule.h"
#include "gpu/stream.h"
#include "storage/page_store.h"
#include "storage/paged_graph.h"

namespace gts {

/// Multi-GPU strategies of Section 4.
enum class Strategy : uint8_t {
  kPerformance,  ///< replicate WA, partition the page stream (Section 4.1)
  kScalability,  ///< partition WA, replicate the page stream (Section 4.2)
};

std::string_view StrategyName(Strategy strategy);

/// Engine knobs (everything else is in MachineConfig).
struct GtsOptions {
  Strategy strategy = Strategy::kPerformance;
  int num_streams = 16;  ///< GPU streams per device (Figure 10 sweeps this)
  MicroStrategy micro = MicroStrategy::kEdgeCentric;
  bool enable_cache = true;
  CachePolicy cache_policy = CachePolicy::kPinned;
  /// Device bytes reserved for the page cache; kAutoCacheBytes = all free
  /// device memory after WABuf and the stream buffers.
  uint64_t cache_bytes = kAutoCacheBytes;
  /// Execute kernels on real asynchronous gpu::Streams (worker threads)
  /// instead of inline. Results are equivalent; inline is deterministic
  /// to the bit for floating-point kernels.
  bool use_stream_threads = false;
  /// Retain the full per-op timeline in RunMetrics (Figure 4).
  bool keep_timeline = false;
  /// Safety valve for traversal loops.
  int max_levels = 100000;

  /// Section 9 future-work extension: fraction of the page stream the
  /// host CPUs co-process alongside the GPUs (TOTEM-style hybrid, but
  /// page-granular and with no graph partitioning to tune). 0 disables
  /// co-processing, which is the paper's GTS. Requires Strategy-P.
  double cpu_assist_fraction = 0.0;

  /// Ablation: interleave SPs and LPs in page-id order instead of the
  /// paper's SP-pass-then-LP-pass, paying the kernel-switch overhead the
  /// separation exists to avoid (Section 3.2).
  bool interleave_sp_lp = false;

  static constexpr uint64_t kAutoCacheBytes = ~uint64_t{0};
};

/// Result of one Run().
struct RunMetrics {
  SimTime sim_seconds = 0.0;  ///< simulated elapsed time of the run
  int levels = 0;             ///< traversal levels (1 for full scans)
  uint64_t pages_streamed = 0;  ///< H2D page transfers performed
  uint64_t cpu_pages = 0;       ///< pages co-processed on the host CPUs
  uint64_t sp_kernel_calls = 0;
  uint64_t lp_kernel_calls = 0;
  uint64_t cache_lookups = 0;
  uint64_t cache_hits = 0;
  /// Cache inserts rejected because every evictable page was pinned by an
  /// in-flight kernel (the page stayed on the streaming SPBuf/LPBuf path).
  uint64_t cache_backpressure = 0;
  WorkStats work;
  PageStoreStats io;          ///< storage-level counters for this run

  /// For traversal runs with GtsKernel::collect_level_pages(): the page ids
  /// processed at each level (drives backward passes, e.g. betweenness).
  std::vector<std::vector<PageId>> level_pages;

  // Resource-busy breakdown from the schedule (for Table 1 style ratios).
  SimTime transfer_busy = 0.0;
  SimTime kernel_busy = 0.0;
  SimTime storage_busy = 0.0;

  /// Full op timeline; populated only with GtsOptions::keep_timeline.
  gpu::ScheduleResult timeline;

  double cache_hit_rate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
};

/// The GTS engine. One engine serves one graph + store + machine; Run()
/// may be called repeatedly (e.g. once per PageRank iteration).
class GtsEngine {
 public:
  GtsEngine(const PagedGraph* graph, PageStore* store, MachineConfig machine,
            GtsOptions options);
  ~GtsEngine();

  GtsEngine(const GtsEngine&) = delete;
  GtsEngine& operator=(const GtsEngine&) = delete;

  /// Executes one pass (full scan) or one complete traversal (level loop).
  /// `source` seeds the frontier for traversal kernels (host WA must
  /// already mark it, e.g. LV[source] = 0). A non-negative
  /// `max_levels_override` truncates a traversal after that many level
  /// passes (k-hop neighborhood queries); -1 uses GtsOptions::max_levels.
  Result<RunMetrics> Run(GtsKernel* kernel,
                         VertexId source = kInvalidVertexId,
                         int max_levels_override = -1);

  /// Streams exactly `pages` (one pass, any kernel type) at traversal level
  /// `level`. Used for algorithm phases that drive their own page sets,
  /// e.g. the backward sweep of betweenness centrality.
  Result<RunMetrics> RunPass(GtsKernel* kernel,
                             const std::vector<PageId>& pages,
                             uint32_t level = 0);

  const PagedGraph* graph() const { return graph_; }
  int num_gpus() const { return machine_.num_gpus; }
  const MachineConfig& machine() const { return machine_; }
  const GtsOptions& options() const { return options_; }

 private:
  struct GpuState;
  struct CpuState;

  /// Per-GPU WA ownership range under the active strategy. Traversal
  /// kernels always replicate WA (they read arbitrary neighbors' state).
  void WaRange(int g, bool traversal, VertexId* begin, VertexId* end) const;

  /// True if the hybrid extension routes page `pid` to the host CPUs.
  bool AssignToCpu(PageId pid) const;

  /// Processes one page on the host CPUs (no PCI-E traffic).
  Status ProcessPageOnCpu(GtsKernel* kernel, PageId pid,
                          uint32_t cur_level, RunMetrics* metrics);

  /// Validates memory capacity and allocates WABuf/stream buffers/caches.
  Status SetupBuffers(GtsKernel* kernel);
  void ReleaseBuffers();

  /// Computes the schedule, gathers stats, releases buffers.
  void FinalizeRun(RunMetrics* metrics);

  /// Streams one list of pages to the GPUs and runs kernels; records ops
  /// and accumulates stats. Page kind (SP/LP) is derived per page.
  Status ProcessPages(GtsKernel* kernel, const std::vector<PageId>& pids,
                      uint32_t cur_level, RunMetrics* metrics);

  /// Orders a work list per GtsOptions::interleave_sp_lp: the paper's
  /// SP-pass-then-LP-pass, or a single pid-ordered interleaved pass.
  std::vector<PageId> OrderPages(std::vector<PageId> sps,
                                 std::vector<PageId> lps) const;

  /// Uploads WA to every GPU (records H2DChunk ops).
  void UploadWa(GtsKernel* kernel);
  /// Syncs WA back (P2P merge + D2H for Strategy-P, N x D2H for S) and
  /// absorbs device values into the kernel's host arrays.
  void DownloadWa(GtsKernel* kernel);

  void SynchronizeStreams();

  const PagedGraph* graph_;
  PageStore* store_;
  MachineConfig machine_;
  GtsOptions options_;

  std::vector<std::unique_ptr<GpuState>> gpus_;
  std::unique_ptr<CpuState> cpu_;  // present while a hybrid run is active
  uint32_t max_slots_per_page_ = 0;

  // Schedule recording (guarded: stream threads patch kernel durations).
  std::mutex record_mu_;
  gpu::ScheduleRecorder recorder_;
  gpu::OpIndex RecordOp(gpu::TimelineOp op);
  void PatchKernelDuration(gpu::OpIndex idx, SimTime duration);
};

}  // namespace gts

#endif  // GTS_CORE_ENGINE_H_
