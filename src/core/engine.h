// The GTS framework engine (Algorithm 1).
//
// Run() executes a kernel over a PagedGraph: it places WA in (simulated)
// device memory, then streams topology pages and RA subvectors to the
// GPU(s) over k asynchronous streams, calling K_SP / K_LP per page. For
// BFS-like kernels it iterates level by level over the page-granular
// frontier (nextPIDSet) with the device page cache enabled; for
// PageRank-like kernels it makes one pass over every page (callers loop
// for multi-iteration algorithms).
//
// Execution is real (results come from actually running the kernels);
// elapsed time is computed by the deterministic discrete-event scheduler
// against the machine's TimeModel (see gpu/schedule.h).
#ifndef GTS_CORE_ENGINE_H_
#define GTS_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/analysis_options.h"
#include "analysis/sync/sync.h"
#include "analysis/event_log.h"
#include "analysis/schedule_validator.h"
#include "common/status.h"
#include "core/dispatch/dispatch_options.h"
#include "core/frontier.h"
#include "core/kernel.h"
#include "core/machine_config.h"
#include "core/page_cache.h"
#include "core/run_metrics.h"
#include "core/run_report.h"
#include "gpu/device.h"
#include "gpu/schedule.h"
#include "gpu/stream.h"
#include "ingest/edge_stream.h"
#include "ingest/ingest_options.h"
#include "io/io_engine.h"
#include "obs/metrics.h"
#include "storage/page_store.h"
#include "storage/paged_graph.h"
#include "transfer/transfer_backend.h"
#include "transfer/transfer_options.h"

#if GTS_RACE_CHECK_ENABLED
#include "analysis/race_detector.h"
#endif

namespace gts {

class DispatchPipeline;
class JobScheduler;
struct JobExec;
struct JobOptions;

/// Multi-GPU strategies of Section 4.
enum class Strategy : uint8_t {
  kPerformance,  ///< replicate WA, partition the page stream (Section 4.1)
  kScalability,  ///< partition WA, replicate the page stream (Section 4.2)
};

std::string_view StrategyName(Strategy strategy);

/// Engine knobs (everything else is in MachineConfig).
struct GtsOptions {
  Strategy strategy = Strategy::kPerformance;
  int num_streams = 16;  ///< GPU streams per device (Figure 10 sweeps this)
  MicroStrategy micro = MicroStrategy::kEdgeCentric;
  bool enable_cache = true;
  CachePolicy cache_policy = CachePolicy::kPinned;
  /// Device bytes reserved for the page cache; kAutoCacheBytes = all free
  /// device memory after WABuf and the stream buffers.
  uint64_t cache_bytes = kAutoCacheBytes;
  /// Execute kernels on real asynchronous gpu::Streams (worker threads)
  /// instead of inline. Results are equivalent; inline is deterministic
  /// to the bit for floating-point kernels.
  bool use_stream_threads = false;
  /// Retain the full per-op timeline in RunMetrics (Figure 4).
  bool keep_timeline = false;
  /// Safety valve for traversal loops.
  int max_levels = 100000;

  /// Upper bound on jobs the JobScheduler executes concurrently in one
  /// batch epoch (shared-topology streaming: one merged page demand per
  /// pass, private WA partition per job). 1 -- the default -- keeps every
  /// submission on the legacy single-run path, which is byte-identical
  /// to the pre-scheduler schedules. Values > 1 require an asynchronous
  /// dispatch path (use_stream_threads or dispatch.work_stealing) and
  /// are incompatible with cpu_assist_fraction > 0; Validate() rejects
  /// those combinations with actionable messages.
  int max_concurrent_jobs = 1;

  /// Section 9 future-work extension: fraction of the page stream the
  /// host CPUs co-process alongside the GPUs (TOTEM-style hybrid, but
  /// page-granular and with no graph partitioning to tune). 0 disables
  /// co-processing, which is the paper's GTS. Requires Strategy-P.
  double cpu_assist_fraction = 0.0;

  /// The three-stage dispatch pipeline (src/core/dispatch/): page
  /// ordering, GPU partitioning, stream assignment. The defaults
  /// reproduce the paper's schedule bit-for-bit; the SP/LP-interleaving
  /// ablation that used to be `interleave_sp_lp` is now
  /// `dispatch.order = PageOrderKind::kInterleaved`.
  DispatchOptions dispatch;

  /// The storage I/O engine (src/io/): per-device queue depth, in-device
  /// reorder policy, prefetch in-flight bound. The depth-1 FIFO default
  /// reproduces the classic synchronous fetch schedule bit-for-bit.
  io::IoOptions io;

  /// The H2D topology-transfer backend (src/transfer/): page_stream
  /// (the paper's whole-page streaming; byte-identical to the
  /// pre-backend engine), direct (EMOGI-style cache-line fetches of
  /// active adjacency lists), or auto (per-level cost-model crossover).
  transfer::TransferOptions transfer;

  /// gts::analysis knobs: the always-on schedule validator and, when the
  /// build carries -DGTS_RACE_CHECK=ON, the logical race detector. Both
  /// report into RunMetrics::analysis and the `analysis.*` counters;
  /// fail_on_* escalates findings to a Run() error.
  analysis::AnalysisOptions analysis;

  /// gts::ingest (src/ingest/): streaming edge insertions/deletions over
  /// the frozen paged graph. Disabled by default; when enabled the engine
  /// constructs an EdgeStream (reach it via GtsEngine::edge_stream()),
  /// publishes buffered updates at run/pass boundaries, and overlays
  /// pending delta chains onto every staged page.
  ingest::IngestOptions ingest;

  static constexpr uint64_t kAutoCacheBytes = ~uint64_t{0};
  /// Stream-key encoding limit (gpu * kMaxStreamsPerGpu + stream).
  static constexpr int kMaxStreamsPerGpu = 4096;

  /// Checks every option invariant against the target machine:
  /// num_streams in [1, kMaxStreamsPerGpu], max_levels >= 1,
  /// cpu_assist_fraction in [0, 1), an explicit cache_bytes that fits in
  /// device memory, a machine with at least one GPU, and a dispatch
  /// partition kind compatible with the strategy (see engine.cc). The
  /// single
  /// source of option validation; the engine constructor calls it and
  /// refuses (aborts) on failure, so construct-time callers that need a
  /// recoverable error should Validate() first. Workload-dependent
  /// checks (memory capacity per kernel, hybrid strategy rules) stay at
  /// Run() time where the kernel is known.
  Status Validate(const MachineConfig& machine) const;
};

/// The GTS engine. One engine serves one graph + store + machine; Run()
/// may be called repeatedly (e.g. once per PageRank iteration).
class GtsEngine {
 public:
  GtsEngine(const PagedGraph* graph, PageStore* store, MachineConfig machine,
            GtsOptions options);
  ~GtsEngine();

  GtsEngine(const GtsEngine&) = delete;
  GtsEngine& operator=(const GtsEngine&) = delete;

  /// Executes one pass (full scan) or one complete traversal (level loop).
  /// `source` seeds the frontier for traversal kernels (host WA must
  /// already mark it, e.g. LV[source] = 0). A non-negative
  /// `max_levels_override` truncates a traversal after that many level
  /// passes (k-hop neighborhood queries); -1 uses GtsOptions::max_levels.
  Result<RunMetrics> Run(GtsKernel* kernel,
                         VertexId source = kInvalidVertexId,
                         int max_levels_override = -1);

  /// Streams exactly `pages` (one pass, any kernel type) at traversal level
  /// `level`. Used for algorithm phases that drive their own page sets,
  /// e.g. the backward sweep of betweenness centrality.
  Result<RunMetrics> RunPass(GtsKernel* kernel,
                             const std::vector<PageId>& pages,
                             uint32_t level = 0);

  /// Run() folded into `report`: accumulates the pass into
  /// report->metrics, refreshes report->snapshot from the engine
  /// registry, and returns the per-pass increment (loop drivers read it
  /// for convergence / level_pages without any hand-written `+=`).
  Result<RunMetrics> RunInto(GtsKernel* kernel, RunReport* report,
                             VertexId source = kInvalidVertexId,
                             int max_levels_override = -1);

  /// RunPass() folded into `report`; see RunInto().
  Result<RunMetrics> RunPassInto(GtsKernel* kernel, RunReport* report,
                                 const std::vector<PageId>& pages,
                                 uint32_t level = 0);

  /// The engine's job scheduler: the serving API. Run()/RunPass() above
  /// are thin shims over scheduler().Submit(...).Wait(); use the
  /// scheduler directly to run jobs concurrently (max_concurrent_jobs),
  /// cancel them, or poll with TryJoin().
  JobScheduler& scheduler() { return *scheduler_; }

  const PagedGraph* graph() const { return graph_; }
  int num_gpus() const { return machine_.num_gpus; }
  const MachineConfig& machine() const { return machine_; }
  const GtsOptions& options() const { return options_; }

  /// The engine's metrics registry: cumulative counters over the engine's
  /// lifetime, refreshed at the end of every Run()/RunPass(). Shared so
  /// sinks (storage devices, profiling) may outlive the engine.
  const std::shared_ptr<obs::MetricsRegistry>& metrics_registry() const {
    return registry_;
  }

  /// The streaming-ingestion subsystem (GtsOptions::ingest.enabled);
  /// null when ingestion is disabled. Producer threads Append() update
  /// batches here at any time; the engine publishes them at run/pass
  /// boundaries. Use scheduler().QuiesceIngest() for a full drain +
  /// compaction at a point where no job is running.
  ingest::EdgeStream* edge_stream() { return ingest_.get(); }

 private:
  friend class JobScheduler;

  struct GpuState;
  struct CpuState;

  /// Scheduler entry point for single-job batches: dispatches to the
  /// legacy RunDirect/RunPassDirect bodies (byte-identical schedules),
  /// honoring exec->cancel at level boundaries.
  Result<RunMetrics> ExecuteJob(JobExec* exec);

  /// The legacy run bodies, unchanged except for the cancellation probe
  /// (`cancel` may be null) and the per-job knobs read from `jopts`
  /// (streamed-bytes quota, pinned graph version; null = defaults).
  /// The public Run()/RunPass() reach them through the scheduler's
  /// single-job path.
  Result<RunMetrics> RunDirect(GtsKernel* kernel, VertexId source,
                               int max_levels_override,
                               std::atomic<bool>* cancel,
                               const JobOptions* jopts = nullptr);
  Result<RunMetrics> RunPassDirect(GtsKernel* kernel,
                                   const std::vector<PageId>& pages,
                                   uint32_t level, std::atomic<bool>* cancel,
                                   const JobOptions* jopts = nullptr);

  /// Scheduler entry point for multi-job batches: one epoch in which the
  /// admitted jobs share the streaming machinery (merged per-pass page
  /// demand, shared cache/io/copy engines) while each owns a private WA
  /// partition and metrics scope. Per-job outcomes land in each
  /// JobExec::status/metrics (finished set); jobs left !finished were
  /// deferred by WA admission control. Returns non-OK only for engine
  /// bugs, never for per-job failures.
  Status RunJobBatch(const std::vector<JobExec*>& jobs);

  // --- RunJobBatch helpers ---
  /// Allocates job `slot`'s per-GPU WA partition (+ local nextPIDSets
  /// for traversal kernels); on failure every partial slice is released
  /// and the allocation error returned (the admission-control signal).
  Status AdmitJobSlices(JobExec* job, int slot);
  void ReleaseJobSlices(JobExec* job);
  /// Allocates the shared per-stream SP/LP/RA buffers (RA sized for the
  /// largest admitted ra_bytes_per_vertex) and resets stream state.
  Status SetupSharedStreamBuffers(uint32_t max_ra_b);
  /// Per-GPU shared page cache over the memory left after admission.
  void SetupBatchCaches();
  void ReleaseBatchBuffers(const std::vector<JobExec*>& jobs);
  /// Tagged (TimelineOp::job) WA upload/download for one job's slices.
  void UploadWaJob(JobExec* job);
  void DownloadWaJob(JobExec* job);
  /// Completes one job inside a running epoch: WA download (ok jobs),
  /// per-job work/io stat harvest, slice release, finished flag.
  void FinishJobInEpoch(JobExec* job);
  /// Batch variants of the dispatch loops: every page carries the list
  /// of jobs demanding it; one stream/cache access services them all.
  Status ProcessPagesBatch(
      const std::vector<PageId>& ordered,
      const std::unordered_map<PageId, std::vector<JobExec*>>& demand);
  Status ProcessPagesBatchPull(
      const std::vector<PageId>& ordered,
      const std::unordered_map<PageId, std::vector<JobExec*>>& demand);
  Status StreamPageToGpuBatch(PageId pid, int g, int s,
                              const std::vector<JobExec*>& demanders,
                              bool pull, bool stolen);
  /// Epoch wrap-up: simulate once, run the validator (including the
  /// job-isolation rule) over the merged timeline, stamp every finished
  /// job with the epoch makespan/busy stats, publish, release buffers.
  void FinalizeBatchEpoch(const std::vector<JobExec*>& jobs);

  /// Per-GPU WA ownership range under the active strategy. Traversal
  /// kernels always replicate WA (they read arbitrary neighbors' state).
  void WaRange(int g, bool traversal, VertexId* begin, VertexId* end) const;

  /// True if the hybrid extension routes page `pid` to the host CPUs.
  bool AssignToCpu(PageId pid) const;

  /// One page's CPU/GPU routing under the active strategy + partition
  /// policy. The single source of routing truth shared by PlanPass's
  /// demand planning and both dispatch loops, so they cannot drift.
  struct PageRoute {
    bool cpu = false;   ///< hybrid extension routes it to the host CPUs
    int first_gpu = 0;  ///< inclusive
    int last_gpu = -1;  ///< inclusive (spans every GPU when replicated)
  };
  PageRoute RoutePage(PageId pid) const;

  /// Processes one page on the host CPUs (no PCI-E traffic).
  Status ProcessPageOnCpu(GtsKernel* kernel, PageId pid,
                          uint32_t cur_level, RunMetrics* metrics);

  /// Validates memory capacity and allocates WABuf/stream buffers/caches.
  Status SetupBuffers(GtsKernel* kernel);
  void ReleaseBuffers();

  /// Computes the schedule, runs gts::analysis over it (schedule
  /// validation always; race-report harvest under GTS_RACE_CHECK),
  /// gathers stats, releases buffers. Non-OK only when
  /// GtsOptions::analysis escalates findings (fail_on_race /
  /// fail_on_violation); by default findings are report-only in
  /// RunMetrics::analysis.
  Status FinalizeRun(RunMetrics* metrics);

  /// Publishes one run's counters cumulatively into registry_.
  void PublishMetrics(const RunMetrics& metrics);

  /// Streams one list of pages to the GPUs and runs kernels; records ops
  /// and accumulates stats. Page kind (SP/LP) is derived per page.
  /// Dispatches to ProcessPagesPull when dispatch.work_stealing is on
  /// and stream threads are enabled; otherwise runs the classic
  /// policy-driven push loop (byte-identical schedule to the seed).
  Status ProcessPages(GtsKernel* kernel, const std::vector<PageId>& pids,
                      uint32_t cur_level, RunMetrics* metrics);

  /// Worker-driven pull dispatch: publishes the pass as work items on a
  /// shared ReadyQueue (replicated pages fan out as one gpu-bound item
  /// per GPU) and has every stream worker claim -- stealing from sibling
  /// streams and, under Strategy-P, across GPUs -- until the queue
  /// drains. Claim/steal edges are recorded in dispatch_events_ for the
  /// validator's R9 rule.
  Status ProcessPagesPull(GtsKernel* kernel, const std::vector<PageId>& pids,
                          uint32_t cur_level, RunMetrics* metrics);

  /// Streams one page to stream `s` of GPU `g` and runs its kernel: the
  /// shared body of the push loop and the pull workers. With `pull` set,
  /// the host-side phase (io acquire + MMBuf read, op recording, metric
  /// bumps) runs under dispatch_mu_ and the kernel executes inline on
  /// the calling stream worker; otherwise the classic push behavior
  /// (enqueue to the stream under use_stream_threads, else inline).
  Status StreamPageToGpu(GtsKernel* kernel, PageId pid, int g, int s,
                         uint32_t cur_level, RunMetrics* metrics, bool pull,
                         bool stolen);

  /// Stage 0 of every pass: drives the dispatch pipeline (partition plan
  /// + page order) and hands the ordered batch to the io engine, which
  /// begins prefetching it into MMBuf through the per-device queues.
  /// `frontier` is the level's counted frontier for traversal passes,
  /// null otherwise.
  std::vector<PageId> PlanPass(std::vector<PageId> sps,
                               std::vector<PageId> lps,
                               const PidSet* frontier);

  /// True when traversal frontiers should count activations (the
  /// frontier-density order policy, the admission threshold, or a
  /// non-page-stream transfer backend needs the per-page totals).
  bool CountFrontier() const;

  /// The level's effective dispatch.min_active_edges: explicit values
  /// pass through exactly; the kAuto sentinel derives the threshold
  /// from the level's observed active-edge distribution over
  /// `front_pages` (HyTGraph-style adaptive admission).
  uint32_t EffectiveMinActiveEdges(const PidSet& frontier,
                                   const std::vector<PageId>& front_pages);

  /// Fills out_degrees_ (per-vertex out-degree table) on first use; the
  /// weight source for active-edge frontier counting. With ingestion
  /// enabled the table is rebuilt whenever the publish epoch moved, then
  /// patched with the accumulated per-vertex degree deltas.
  void BuildDegreeTable();

  /// Safe-point ingest publish: drains buffered updates into delta
  /// chains + installs finished compactions, then invalidates cached
  /// copies of every changed page on every GPU (in-flight pins keep
  /// their stale bytes until released). No-op when ingestion is
  /// disabled. Must only run at pass/level boundaries -- never while
  /// stream workers hold staged pages.
  void PublishIngest();

  /// Scheduler-only (driver-exclusive) full drain: flush + publish +
  /// compact until every delta chain is empty. See
  /// JobScheduler::QuiesceIngest.
  Status QuiesceIngestExclusive();

  /// Uploads WA to every GPU (records H2DChunk ops).
  void UploadWa(GtsKernel* kernel);
  /// Syncs WA back (P2P merge + D2H for Strategy-P, N x D2H for S) and
  /// absorbs device values into the kernel's host arrays.
  void DownloadWa(GtsKernel* kernel);

  void SynchronizeStreams();

  const PagedGraph* graph_;
  PageStore* store_;
  MachineConfig machine_;
  GtsOptions options_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<DispatchPipeline> pipeline_;
  std::unique_ptr<io::IoEngine> io_;
  /// The H2D topology-transfer backend (GtsOptions::transfer.mode);
  /// constructed after io_, whose lifetime it depends on.
  std::unique_ptr<transfer::TransferBackend> transfer_;
  std::unique_ptr<JobScheduler> scheduler_;
  /// Streaming-ingestion subsystem; null unless GtsOptions::ingest.enabled.
  /// Constructed after io_ (its delta/rewrite persistence goes through
  /// the priced io write path).
  std::unique_ptr<ingest::EdgeStream> ingest_;

  /// Per-vertex out-degrees; built lazily for active-edge counting.
  std::vector<uint32_t> out_degrees_;
  /// Ingest publish epoch out_degrees_ was built against (ingest only).
  uint64_t degree_epoch_ = 0;

  std::vector<std::unique_ptr<GpuState>> gpus_;
  std::unique_ptr<CpuState> cpu_;  // present while a hybrid run is active
  uint32_t max_slots_per_page_ = 0;

  // Schedule recording (guarded: stream threads patch kernel durations).
  // Leaf lock: nothing is acquired while holding it, hence the highest
  // level in the declared order.
  analysis::sync::Mutex record_mu_{"engine.record",
                                   analysis::sync::level::kRecord};
  gpu::ScheduleRecorder recorder_ GTS_GUARDED_BY(record_mu_);
  gpu::OpIndex RecordOp(gpu::TimelineOp op);
  void PatchKernelDuration(gpu::OpIndex idx, SimTime duration);

  // gts::analysis wiring. The event logs feed the always-on schedule
  // validator (pin lifetimes from every PageCache, submit/issue/deliver
  // sequences from gts::io); both are cleared at run start and drained by
  // FinalizeRun. The happens-before detector exists only under
  // -DGTS_RACE_CHECK=ON and only when GtsOptions::analysis.race_check.
  analysis::PinEventLog pin_events_;
  analysis::IoEventLog io_events_;
  /// Ready-queue enqueue/claim edges for the validator's R9
  /// claim-uniqueness rule (only populated by pull-mode passes).
  analysis::DispatchEventLog dispatch_events_;
  /// First work-item id for the next pull-mode pass. Item ids key the R9
  /// audit across the whole run, so each pass's ReadyQueue continues the
  /// sequence; reset to 0 wherever dispatch_events_ is cleared.
  uint64_t work_item_seq_ = 0;

  /// Serializes the host-side phase of pull-mode stream workers:
  /// io_->Acquire + MMBuf reads (a concurrent Acquire may evict the
  /// bytes another worker is copying), op recording order, and
  /// RunMetrics bumps. Kernel execution and ready-queue claims run
  /// outside it -- that concurrency is the point of pull dispatch.
  /// Ordered just above job.scheduler: a worker holding it may acquire
  /// the io, cache, and record locks, never the scheduler's.
  analysis::sync::Mutex dispatch_mu_{"engine.dispatch",
                                     analysis::sync::level::kEngineDispatch};
#if GTS_RACE_CHECK_ENABLED
  std::unique_ptr<analysis::RaceDetector> race_;
#endif
};

}  // namespace gts

#endif  // GTS_CORE_ENGINE_H_
