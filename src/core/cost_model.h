// The analytic cost models of Section 5 (Eq. 1 and Eq. 2).
//
// These are deliberately independent of the discrete-event scheduler: the
// paper uses them to explain performance tendencies, and the tests check
// that the simulator and the closed-form model agree on those tendencies.
#ifndef GTS_CORE_COST_MODEL_H_
#define GTS_CORE_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "gpu/time_model.h"
#include "graph/types.h"

namespace gts {

/// Inputs to Eq. 1 (PageRank-like algorithms, Strategy-P, no I/O),
/// for a single pass/iteration.
struct PageRankCostInputs {
  uint64_t wa_bytes = 0;   ///< |WA|
  uint64_t ra_bytes = 0;   ///< |RA|
  uint64_t sp_bytes = 0;   ///< |SP| (total small-page bytes)
  uint64_t lp_bytes = 0;   ///< |LP|
  uint64_t num_pages = 0;  ///< S + L
  /// t_kernel(SP|1| + LP|1|): execution time of the last SP and LP kernels
  /// that data streaming cannot hide.
  SimTime last_kernel_seconds = 0.0;
  int num_gpus = 1;
};

/// Eq. 1:  2|WA|/c1 + (|RA|+|SP|+|LP|)/(c2 N) + t_call((S+L)/N)
///          + t_kernel(SP|1|+LP|1|) + t_sync(N).
SimTime PageRankLikeCost(const PageRankCostInputs& in, const TimeModel& tm);

/// Per-level inputs to Eq. 2 (BFS-like algorithms).
struct BfsLevelCost {
  uint64_t bytes = 0;  ///< |RA{l}| + |SP{l}| + |LP{l}|
  uint64_t pages = 0;  ///< S{l} + L{l}
};

struct BfsCostInputs {
  uint64_t wa_bytes = 0;
  std::vector<BfsLevelCost> levels;
  /// Workload balance across GPUs in [1/N, 1]; 1 = perfectly balanced.
  double dskew = 1.0;
  /// Cache hit rate r_hit in [0, 1] (~B/(S+L) for random graphs, Sec 3.3).
  double hit_rate = 0.0;
  int num_gpus = 1;
};

/// Eq. 2:  2|WA|/c1 + sum_l [ bytes_l (1-r_hit) / (c2 N d_skew)
///                            + t_call(pages_l / (N d_skew)) ].
SimTime BfsLikeCost(const BfsCostInputs& in, const TimeModel& tm);

/// The naive cache-hit approximation of Section 3.3: B/(S+L), clamped.
double ApproximateHitRate(uint64_t cache_pages, uint64_t total_pages);

/// Section 3.2: "the suitable number of streams k can be determined by
/// using the ratio of the transfer time of SP_j and RA_j to the kernel
/// execution time" -- one stream to transfer plus enough to keep kernels
/// resident, capped at the CUDA concurrent-kernel limit.
int SuggestNumStreams(SimTime transfer_seconds, SimTime kernel_seconds,
                      int max_streams = 32);

/// Aggregate statistics of one traversal level's page demand, the inputs
/// to the page-stream-vs-direct transfer crossover (transfer.mode=auto).
/// `active_vertices`/`active_edges` come from the degree-weighted PidSet
/// (PidSet::VertexCountOf / PidSet::CountOf summed over the demanded SP
/// pages); LP pages always stream whole (a single hub's chunk is dense by
/// construction), so they contribute the same term to both estimates.
struct TransferLevelStats {
  uint64_t sp_pages = 0;         ///< demanded small pages
  uint64_t lp_pages = 0;         ///< demanded large pages (incl. chunks)
  uint64_t active_vertices = 0;  ///< activation events in the SP pages
  uint64_t active_edges = 0;     ///< degree-weighted activations
  uint64_t page_size = 0;        ///< bytes per slotted page
  uint32_t entry_bytes = 0;      ///< bytes per adjacency entry (p + q)
};

/// Bytes the direct backend moves for the level's SP pages: one aligned
/// line per active vertex (slot + record header + first entries) plus the
/// remaining adjacency entries at line granularity.
uint64_t DirectTransferBytes(const TransferLevelStats& s, const TimeModel& tm);

/// Level seconds under page streaming: every demanded page crosses PCI-E
/// whole at the streaming bandwidth c2.
SimTime PageStreamLevelSeconds(const TransferLevelStats& s,
                               const TimeModel& tm);

/// Level seconds under direct access: SP adjacency lists at line
/// granularity over direct_bandwidth plus a per-vertex fetch latency;
/// LP pages still stream whole at c2.
SimTime DirectLevelSeconds(const TransferLevelStats& s, const TimeModel& tm);

/// The calibrated crossover: true when fine-grained direct access is
/// estimated cheaper than streaming whole pages for this level. Levels
/// with no recorded activations (counting off, or a pure scan pass)
/// always prefer page streaming.
bool PreferDirectTransfer(const TransferLevelStats& s, const TimeModel& tm);

}  // namespace gts

#endif  // GTS_CORE_COST_MODEL_H_
