// The analytic cost models of Section 5 (Eq. 1 and Eq. 2).
//
// These are deliberately independent of the discrete-event scheduler: the
// paper uses them to explain performance tendencies, and the tests check
// that the simulator and the closed-form model agree on those tendencies.
#ifndef GTS_CORE_COST_MODEL_H_
#define GTS_CORE_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "gpu/time_model.h"
#include "graph/types.h"

namespace gts {

/// Inputs to Eq. 1 (PageRank-like algorithms, Strategy-P, no I/O),
/// for a single pass/iteration.
struct PageRankCostInputs {
  uint64_t wa_bytes = 0;   ///< |WA|
  uint64_t ra_bytes = 0;   ///< |RA|
  uint64_t sp_bytes = 0;   ///< |SP| (total small-page bytes)
  uint64_t lp_bytes = 0;   ///< |LP|
  uint64_t num_pages = 0;  ///< S + L
  /// t_kernel(SP|1| + LP|1|): execution time of the last SP and LP kernels
  /// that data streaming cannot hide.
  SimTime last_kernel_seconds = 0.0;
  int num_gpus = 1;
};

/// Eq. 1:  2|WA|/c1 + (|RA|+|SP|+|LP|)/(c2 N) + t_call((S+L)/N)
///          + t_kernel(SP|1|+LP|1|) + t_sync(N).
SimTime PageRankLikeCost(const PageRankCostInputs& in, const TimeModel& tm);

/// Per-level inputs to Eq. 2 (BFS-like algorithms).
struct BfsLevelCost {
  uint64_t bytes = 0;  ///< |RA{l}| + |SP{l}| + |LP{l}|
  uint64_t pages = 0;  ///< S{l} + L{l}
};

struct BfsCostInputs {
  uint64_t wa_bytes = 0;
  std::vector<BfsLevelCost> levels;
  /// Workload balance across GPUs in [1/N, 1]; 1 = perfectly balanced.
  double dskew = 1.0;
  /// Cache hit rate r_hit in [0, 1] (~B/(S+L) for random graphs, Sec 3.3).
  double hit_rate = 0.0;
  int num_gpus = 1;
};

/// Eq. 2:  2|WA|/c1 + sum_l [ bytes_l (1-r_hit) / (c2 N d_skew)
///                            + t_call(pages_l / (N d_skew)) ].
SimTime BfsLikeCost(const BfsCostInputs& in, const TimeModel& tm);

/// The naive cache-hit approximation of Section 3.3: B/(S+L), clamped.
double ApproximateHitRate(uint64_t cache_pages, uint64_t total_pages);

/// Section 3.2: "the suitable number of streams k can be determined by
/// using the ratio of the transfer time of SP_j and RA_j to the kernel
/// execution time" -- one stream to transfer plus enough to keep kernels
/// resident, capped at the CUDA concurrent-kernel limit.
int SuggestNumStreams(SimTime transfer_seconds, SimTime kernel_seconds,
                      int max_streams = 32);

}  // namespace gts

#endif  // GTS_CORE_COST_MODEL_H_
