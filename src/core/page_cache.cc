#include "core/page_cache.h"

#include <cstring>
#include <iterator>
#include <string>
#include <utility>

#include "common/logging.h"
#if GTS_SYNC_CHECK_ENABLED
#include "analysis/sync/lock_registry.h"
#endif

namespace gts {

PageCache::PageCache(gpu::Device* device, uint64_t capacity_bytes,
                     uint64_t page_size, CachePolicy policy,
                     obs::MetricsRegistry* registry,
                     std::string_view metric_prefix)
    : device_(device),
      page_size_(page_size),
      capacity_pages_(page_size == 0 ? 0 : capacity_bytes / page_size),
      policy_(policy) {
  if (registry != nullptr) {
    const std::string prefix(metric_prefix);
    lookups_metric_ = &registry->GetCounter(prefix + ".lookups");
    hits_metric_ = &registry->GetCounter(prefix + ".hits");
    inserts_metric_ = &registry->GetCounter(prefix + ".inserts");
    backpressure_metric_ = &registry->GetCounter(prefix + ".backpressure");
  }
}

PageCache::~PageCache() {
  analysis::sync::Lock lock(mu_);
  GTS_CHECK(total_pins_ == 0)
      << "PageCache destroyed with " << total_pins_
      << " outstanding Pin(s); every Pin must be released first";
}

PageCache::Pin& PageCache::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    pid_ = other.pid_;
    data_ = other.data_;
#if GTS_SYNC_CHECK_ENABLED
    sync_owner_ = other.sync_owner_;
#endif
    other.cache_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageCache::Pin::Release() {
  if (cache_ != nullptr && data_ != nullptr) {
    cache_->Unpin(pid_);
#if GTS_SYNC_CHECK_ENABLED
    analysis::sync::LockRegistry::Global().NotePinReleased(sync_owner_);
#endif
  }
  cache_ = nullptr;
  data_ = nullptr;
}

PageCache::Pin PageCache::Lookup(PageId pid) {
  analysis::sync::Lock lock(mu_);
  Entry* entry = FindLocked(pid);
  if (entry == nullptr) return Pin();
  ++entry->pins;
  ++total_pins_;
  if (pin_log_ != nullptr) {
    pin_log_->Append(analysis::PinEvent::Kind::kPinned, pid);
  }
  Pin pin(this, pid, entry->buffer.data());
#if GTS_SYNC_CHECK_ENABLED
  pin.sync_owner_ = analysis::sync::LockRegistry::Global().NotePinAcquired();
#endif
  return pin;
}

bool PageCache::LookupInto(PageId pid, uint8_t* dst) {
  analysis::sync::Lock lock(mu_);
  const Entry* entry = FindLocked(pid);
  if (entry == nullptr) return false;
  std::memcpy(dst, entry->buffer.data(), page_size_);
  return true;
}

PageCache::Entry* PageCache::FindLocked(PageId pid) {
  ++lookups_;
  if (lookups_metric_ != nullptr) lookups_metric_->Add();
  auto it = entries_.find(pid);
  // A stale entry (invalidated while pinned) misses: its bytes are a
  // previous page version kept alive only for the pins already holding it.
  if (it == entries_.end() || it->second.stale) return nullptr;
  ++hits_;
  if (hits_metric_ != nullptr) hits_metric_->Add();
  if (policy_ == CachePolicy::kLru) {
    order_.erase(it->second.order_it);
    order_.push_front(pid);
    it->second.order_it = order_.begin();
  }
  return &it->second;
}

void PageCache::Unpin(PageId pid) {
  analysis::sync::Lock lock(mu_);
  auto it = entries_.find(pid);
  // Eviction skips pinned pages, so a pinned entry can never disappear.
  GTS_CHECK(it != entries_.end()) << "Unpin of evicted page " << pid;
  GTS_CHECK(it->second.pins > 0) << "Unpin without a pin on page " << pid;
  --it->second.pins;
  --total_pins_;
  if (pin_log_ != nullptr) {
    pin_log_->Append(analysis::PinEvent::Kind::kReleased, pid);
  }
  // Deferred invalidation: the last reader of a stale version just left,
  // so the old bytes can finally go.
  if (it->second.stale && it->second.pins == 0) {
    if (pin_log_ != nullptr) {
      pin_log_->Append(analysis::PinEvent::Kind::kEvicted, pid);
    }
    order_.erase(it->second.order_it);
    entries_.erase(it);
  }
}

uint64_t PageCache::VersionOf(PageId pid) const {
  analysis::sync::Lock lock(mu_);
  auto it = entries_.find(pid);
  return it == entries_.end() ? 0 : it->second.version;
}

bool PageCache::Invalidate(PageId pid) {
  analysis::sync::Lock lock(mu_);
  auto it = entries_.find(pid);
  if (it == entries_.end()) return true;
  if (pin_log_ != nullptr) {
    pin_log_->Append(analysis::PinEvent::Kind::kInvalidated, pid);
  }
  if (it->second.pins > 0) {
    // A kernel may still be reading the old version through its Pin;
    // keep the bytes but hide them from every future lookup.
    it->second.stale = true;
    return false;
  }
  order_.erase(it->second.order_it);
  entries_.erase(it);
  return true;
}

std::string_view CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kPinned:
      return "pinned";
    case CachePolicy::kLru:
      return "LRU";
    case CachePolicy::kFifo:
      return "FIFO";
  }
  return "?";
}

Status PageCache::Insert(PageId pid, const uint8_t* bytes,
                         uint64_t version) {
  analysis::sync::Lock lock(mu_);
  if (capacity_pages_ == 0) return Status::OK();
  // Already present -- including a stale-but-pinned copy, whose device
  // buffer cannot be replaced until its readers drain.
  if (entries_.count(pid) != 0) return Status::OK();
  if (policy_ == CachePolicy::kPinned &&
      entries_.size() >= capacity_pages_) {
    return Status::OK();  // full: scan-resistant, keep the resident set
  }
  while (entries_.size() >= capacity_pages_) {
    // Oldest-first victim scan that skips pages leased out via Pin; a
    // pinned page may be mid-read on a stream thread, so destroying its
    // DeviceBuffer here would be a use-after-free.
    auto victim = order_.end();
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      if (entries_.at(*it).pins == 0) {
        victim = std::next(it).base();
        break;
      }
    }
    if (victim == order_.end()) {
      ++insert_backpressure_;
      if (backpressure_metric_ != nullptr) backpressure_metric_->Add();
      return Status::CapacityExceeded(
          "page cache full: all " + std::to_string(entries_.size()) +
          " resident pages are pinned (page " + std::to_string(pid) +
          " stays on the streaming path)");
    }
    if (pin_log_ != nullptr) {
      pin_log_->Append(analysis::PinEvent::Kind::kEvicted, *victim);
    }
    entries_.erase(*victim);
    order_.erase(victim);
  }
  GTS_ASSIGN_OR_RETURN(
      gpu::DeviceBuffer buffer,
      device_->Allocate(page_size_, "cache[" + std::to_string(pid) + "]"));
  std::memcpy(buffer.data(), bytes, page_size_);
  order_.push_front(pid);
  Entry entry;
  entry.buffer = std::move(buffer);
  entry.order_it = order_.begin();
  entry.version = version;
  entries_.emplace(pid, std::move(entry));
  if (inserts_metric_ != nullptr) inserts_metric_->Add();
  if (pin_log_ != nullptr) {
    pin_log_->Append(analysis::PinEvent::Kind::kInserted, pid);
  }
  return Status::OK();
}

}  // namespace gts
