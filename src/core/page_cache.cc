#include "core/page_cache.h"

#include <cstring>

#include "common/logging.h"

namespace gts {

PageCache::PageCache(gpu::Device* device, uint64_t capacity_bytes,
                     uint64_t page_size, CachePolicy policy)
    : device_(device),
      page_size_(page_size),
      capacity_pages_(page_size == 0 ? 0 : capacity_bytes / page_size),
      policy_(policy) {}

const uint8_t* PageCache::Lookup(PageId pid) {
  std::lock_guard<std::mutex> lock(mu_);
  return LookupLocked(pid);
}

bool PageCache::LookupInto(PageId pid, uint8_t* dst) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint8_t* bytes = LookupLocked(pid);
  if (bytes == nullptr) return false;
  std::memcpy(dst, bytes, page_size_);
  return true;
}

const uint8_t* PageCache::LookupLocked(PageId pid) {
  ++lookups_;
  auto it = entries_.find(pid);
  if (it == entries_.end()) return nullptr;
  ++hits_;
  if (policy_ == CachePolicy::kLru) {
    order_.erase(it->second.order_it);
    order_.push_front(pid);
    it->second.order_it = order_.begin();
  }
  return it->second.buffer.data();
}

std::string_view CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kPinned:
      return "pinned";
    case CachePolicy::kLru:
      return "LRU";
    case CachePolicy::kFifo:
      return "FIFO";
  }
  return "?";
}

Status PageCache::Insert(PageId pid, const uint8_t* bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_pages_ == 0) return Status::OK();
  if (entries_.count(pid) != 0) return Status::OK();
  if (policy_ == CachePolicy::kPinned &&
      entries_.size() >= capacity_pages_) {
    return Status::OK();  // full: scan-resistant, keep the resident set
  }
  while (entries_.size() >= capacity_pages_) {
    const PageId victim = order_.back();
    order_.pop_back();
    entries_.erase(victim);
  }
  GTS_ASSIGN_OR_RETURN(
      gpu::DeviceBuffer buffer,
      device_->Allocate(page_size_, "cache[" + std::to_string(pid) + "]"));
  std::memcpy(buffer.data(), bytes, page_size_);
  order_.push_front(pid);
  Entry entry;
  entry.buffer = std::move(buffer);
  entry.order_it = order_.begin();
  entries_.emplace(pid, std::move(entry));
  return Status::OK();
}

}  // namespace gts
