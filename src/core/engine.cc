#include "core/engine.h"

#include <algorithm>
#include <mutex>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "core/dispatch/dispatch_pipeline.h"
#include "core/dispatch/ready_queue.h"
#include "core/job/job_exec.h"
#include "core/job/job_scheduler.h"
#include "obs/prof.h"

#if GTS_SYNC_CHECK_ENABLED
#include "analysis/sync/lock_registry.h"
#endif

namespace gts {

std::string_view StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kPerformance:
      return "Strategy-P";
    case Strategy::kScalability:
      return "Strategy-S";
  }
  return "?";
}

Status GtsOptions::Validate(const MachineConfig& machine) const {
  if (machine.num_gpus < 1) {
    return Status::InvalidArgument("machine needs at least one GPU, got " +
                                   std::to_string(machine.num_gpus));
  }
  if (num_streams < 1) {
    return Status::InvalidArgument("num_streams must be >= 1, got " +
                                   std::to_string(num_streams));
  }
  if (num_streams > kMaxStreamsPerGpu) {
    return Status::InvalidArgument(
        "num_streams " + std::to_string(num_streams) +
        " would alias StreamKey encodings across GPUs (max " +
        std::to_string(kMaxStreamsPerGpu) + ")");
  }
  if (max_levels < 1) {
    return Status::InvalidArgument("max_levels must be >= 1, got " +
                                   std::to_string(max_levels));
  }
  if (max_concurrent_jobs < 1) {
    return Status::InvalidArgument("max_concurrent_jobs must be >= 1, got " +
                                   std::to_string(max_concurrent_jobs));
  }
  if (max_concurrent_jobs > 1) {
    if (!dispatch.work_stealing && !use_stream_threads) {
      return Status::InvalidArgument(
          "max_concurrent_jobs " + std::to_string(max_concurrent_jobs) +
          " needs an asynchronous dispatch path: set use_stream_threads = "
          "true (worker streams) or dispatch.work_stealing = true (pull "
          "dispatch), or keep max_concurrent_jobs = 1 for the legacy "
          "single-run engine");
    }
    if (cpu_assist_fraction > 0.0) {
      return Status::InvalidArgument(
          "concurrent jobs do not compose with the host co-processing "
          "extension; set cpu_assist_fraction = 0 or max_concurrent_jobs "
          "= 1");
    }
  }
  if (!(cpu_assist_fraction >= 0.0 && cpu_assist_fraction < 1.0)) {
    return Status::InvalidArgument(
        "cpu_assist_fraction must be in [0, 1), got " +
        std::to_string(cpu_assist_fraction));
  }
  if (cache_bytes != kAutoCacheBytes && cache_bytes > machine.device_memory) {
    return Status::InvalidArgument(
        "cache_bytes " + std::to_string(cache_bytes) +
        " exceeds device memory (" + std::to_string(machine.device_memory) +
        " B); use kAutoCacheBytes for whatever fits");
  }
  if (dispatch.steal_batch < 1) {
    return Status::InvalidArgument("dispatch.steal_batch must be >= 1, got " +
                                   std::to_string(dispatch.steal_batch));
  }
  GTS_RETURN_IF_ERROR(io.Validate());
  GTS_RETURN_IF_ERROR(ingest.Validate());
  // The partition stage must agree with the strategy's WA layout on
  // multi-GPU machines (with one GPU every kind degrades to striping and
  // any combination is fine). Strategy-S partitions scan WA, so every GPU
  // must see every page: a partitioned stream would drop the updates
  // owned by the other GPUs. Strategy-P replicates WA, so a replicated
  // stream would apply every scan update num_gpus times.
  if (machine.num_gpus > 1) {
    if (strategy == Strategy::kScalability &&
        (dispatch.partition == GpuPartitionKind::kRoundRobin ||
         dispatch.partition == GpuPartitionKind::kDegreeBalanced)) {
      return Status::InvalidArgument(
          "Strategy-S partitions WA across GPUs and needs the replicated "
          "page stream; dispatch.partition " +
          std::string(GpuPartitionKindName(dispatch.partition)) +
          " would drop cross-partition updates");
    }
    if (strategy == Strategy::kPerformance &&
        dispatch.partition == GpuPartitionKind::kReplicate) {
      return Status::InvalidArgument(
          "Strategy-P replicates WA on every GPU; a replicated page stream "
          "(dispatch.partition replicate) would double-count scan updates");
    }
  }
  return Status::OK();
}

namespace {
/// Encodes (gpu, stream) into a ScheduleSimulator stream key.
int StreamKey(int gpu, int stream) {
  return gpu * GtsOptions::kMaxStreamsPerGpu + stream;
}
}  // namespace

/// Per-GPU mutable state.
struct GtsEngine::GpuState {
  std::unique_ptr<gpu::Device> device;
  std::vector<std::unique_ptr<gpu::Stream>> streams;  // empty when inline
  gpu::DeviceBuffer wa_buf;
  std::vector<gpu::DeviceBuffer> sp_buf;  // one per stream
  std::vector<gpu::DeviceBuffer> lp_buf;
  std::vector<gpu::DeviceBuffer> ra_buf;
  std::vector<int> stream_last_kind;  // -1 until a kernel ran on the stream
  std::unique_ptr<PageCache> cache;
  std::unique_ptr<PidSet> local_next;
  VertexId wa_begin = 0;
  VertexId wa_end = 0;
  std::vector<WorkStats> stream_work;  // accumulated per stream
  int rr = 0;                          // round-robin stream cursor
};

/// Host-CPU co-processing state (Section 9 future-work extension).
struct GtsEngine::CpuState {
  std::vector<uint8_t> wa;             // full host-side WA replica
  std::unique_ptr<PidSet> local_next;  // traversal frontier contribution
  std::vector<WorkStats> lane_work;    // per CPU worker lane
  int rr = 0;
};

GtsEngine::GtsEngine(const PagedGraph* graph, PageStore* store,
                     MachineConfig machine, GtsOptions options)
    : graph_(graph),
      store_(store),
      machine_(machine),
      options_(options),
      registry_(std::make_shared<obs::MetricsRegistry>()) {
  const Status valid = options_.Validate(machine_);
  GTS_CHECK(valid.ok()) << valid.ToString();
  store_->BindMetrics(registry_);
  pipeline_ = std::make_unique<DispatchPipeline>(
      options_.dispatch, options_.strategy == Strategy::kScalability,
      machine_.num_gpus, registry_.get());
  io_ = std::make_unique<io::IoEngine>(
      graph_, store_, options_.io,
      [this](const gpu::TimelineOp& op) { return RecordOp(op); },
      registry_.get());
  io_->BindEventLog(&io_events_);
  {
    transfer::TransferBackend::Env tenv;
    tenv.graph = graph_;
    tenv.io = io_.get();
    tenv.time_model = &machine_.time_model;
    tenv.record = [this](const gpu::TimelineOp& op) { return RecordOp(op); };
    tenv.will_demand = [this](PageId pid) {
      const PageRoute route = RoutePage(pid);
      if (route.cpu) return true;  // the CPU path has no page cache
      for (int g = route.first_gpu; g <= route.last_gpu; ++g) {
        const auto& cache = gpus_[g]->cache;
        if (cache == nullptr || !cache->Contains(pid)) return true;
      }
      return false;
    };
    tenv.registry = registry_.get();
    transfer_ = transfer::MakeTransferBackend(options_.transfer,
                                              std::move(tenv));
  }
  if (options_.ingest.enabled) {
    ingest::EdgeStream::Env env;
    env.graph = graph_;
    env.options = options_.ingest;
    env.registry = registry_.get();
    env.num_devices = static_cast<int>(store_->num_devices());
    env.device_of_page = [this](PageId pid) {
      return static_cast<int>(store_->DeviceOfPage(pid));
    };
    // Delta records append past the base pages AND past the WA-snapshot
    // spill region (DownloadWa checkpoints from DevicePageBytes(d) up),
    // so the journal never overwrites a checkpoint. The reserve bounds
    // the snapshot at 32 WA bytes/vertex for every GPU round-robined
    // onto the device.
    const uint64_t n_dev = store_->num_devices();
    const uint64_t snapshot_reserve =
        graph_->num_vertices() * uint64_t{32} *
        ((static_cast<uint64_t>(machine_.num_gpus) + n_dev - 1) / n_dev);
    env.delta_region_base = [this, snapshot_reserve](int d) {
      return store_->DevicePageBytes(static_cast<size_t>(d)) +
             snapshot_reserve;
    };
    env.write_delta = [this](int device, uint64_t offset,
                             const uint8_t* data, uint64_t length) {
      auto wrote = io_->Write(static_cast<size_t>(device), offset, data,
                              length, gpu::kNoOp);
      GTS_CHECK_OK(wrote.status());
    };
    env.rewrite_page = [this](PageId pid, const uint8_t* data,
                              uint64_t length) {
      auto wrote = io_->RewritePage(pid, data, length);
      GTS_CHECK_OK(wrote.status());
    };
    ingest_ = std::make_unique<ingest::EdgeStream>(std::move(env));
  }
#if GTS_RACE_CHECK_ENABLED
  if (options_.analysis.race_check) {
    race_ = std::make_unique<analysis::RaceDetector>(
        options_.analysis.max_reported);
  }
#endif
  if (options_.dispatch.min_active_edges > 0) {
    // Touch the counter up front so snapshot keys don't depend on whether
    // a run actually skipped anything.
    registry_->GetCounter("dispatch.skipped_pages");
  }
  obs::Counter& stream_ops = registry_->GetCounter("gpu.stream_ops");
  for (int g = 0; g < machine_.num_gpus; ++g) {
    auto state = std::make_unique<GpuState>();
    state->device = std::make_unique<gpu::Device>(g, machine_.device_memory);
    if (options_.use_stream_threads) {
      for (int s = 0; s < options_.num_streams; ++s) {
        auto stream = std::make_unique<gpu::Stream>();
        stream->BindOpsCounter(&stream_ops);
        state->streams.push_back(std::move(stream));
      }
    }
    gpus_.push_back(std::move(state));
  }
  for (PageId pid = 0; pid < graph_->num_pages(); ++pid) {
    max_slots_per_page_ =
        std::max(max_slots_per_page_, graph_->view(pid).num_slots());
  }
  scheduler_ = std::make_unique<JobScheduler>(this);
}

GtsEngine::~GtsEngine() = default;

void GtsEngine::WaRange(int g, bool traversal, VertexId* begin,
                        VertexId* end) const {
  const VertexId n = graph_->num_vertices();
  // Traversal kernels read WA entries of arbitrary neighbors, so WA is
  // replicated even under Strategy-S (the strategy then only changes the
  // streaming pattern: every page goes to every GPU, Section 4.2).
  if (options_.strategy == Strategy::kPerformance || machine_.num_gpus == 1 ||
      traversal) {
    *begin = 0;
    *end = n;
    return;
  }
  const VertexId chunk =
      (n + machine_.num_gpus - 1) / static_cast<VertexId>(machine_.num_gpus);
  *begin = std::min<VertexId>(n, chunk * static_cast<VertexId>(g));
  *end = std::min<VertexId>(n, *begin + chunk);
}

bool GtsEngine::CountFrontier() const {
  return pipeline_->needs_frontier_counts() ||
         options_.dispatch.min_active_edges > 0 ||
         options_.transfer.mode != transfer::TransferMode::kPageStream;
}

uint32_t GtsEngine::EffectiveMinActiveEdges(
    const PidSet& frontier, const std::vector<PageId>& front_pages) {
  const uint32_t min_edges = options_.dispatch.min_active_edges;
  if (min_edges != DispatchOptions::kAutoMinActiveEdges) return min_edges;
  if (!frontier.counting() || front_pages.empty()) return 1;
  // Adaptive cut: skip only the near-empty tail of the level's
  // active-edge distribution -- pages holding under 1/64 of the mean
  // active edges per frontier page. A dense, uniform level (every page
  // near the mean) degrades to the exact threshold 1; a skewed level
  // sheds the long tail of barely-touched pages that would each cost a
  // stream slot for a handful of expansions. Deterministic: depends
  // only on the frontier counts, never on thread timing.
  uint64_t total = 0;
  for (PageId pid : front_pages) total += frontier.CountOf(pid);
  const uint64_t mean = total / front_pages.size();
  const uint32_t threshold =
      static_cast<uint32_t>(std::max<uint64_t>(1, mean / 64));
  registry_->GetDistribution("dispatch.auto_min_active_edges")
      .Record(static_cast<double>(threshold));
  return threshold;
}

void GtsEngine::BuildDegreeTable() {
  if (graph_->num_vertices() == 0) return;
  // Rebuilt only on first use and -- with ingestion enabled -- whenever
  // the publish epoch moved since the last build: streamed inserts and
  // deletes change degrees, and a stale table would mis-weight frontier
  // counts (and the min_active_edges admission cut).
  const uint64_t epoch = ingest_ != nullptr ? ingest_->epoch() : 0;
  if (!out_degrees_.empty() && epoch == degree_epoch_) return;
  out_degrees_.assign(graph_->num_vertices(), 0);
  for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
    const RecordId loc = graph_->VertexLocation(v);
    const PageView view = graph_->view(loc.pid);
    out_degrees_[v] = graph_->kind(loc.pid) == PageKind::kSmall
                          ? view.adjlist_size(loc.slot)
                          : view.header().lp_total_degree;
  }
  if (ingest_ != nullptr) ingest_->ApplyDegreeDeltas(&out_degrees_);
  degree_epoch_ = epoch;
}

void GtsEngine::PublishIngest() {
  if (ingest_ == nullptr) return;
#if GTS_SYNC_CHECK_ENABLED
  // A page pin held across the publish could observe a torn page after
  // the cache invalidation below; the registry flags any still held by
  // this thread.
  analysis::sync::LockRegistry::Global().NoteSafePoint("ingest-publish");
#endif
  const std::vector<PageId> changed = ingest_->Publish();
  if (changed.empty()) return;
  // Every cached copy of a changed page is one (or more) published
  // versions behind: invalidate so the next lookup restages the page
  // with the fresh chain overlaid. Entries still pinned by an in-flight
  // kernel turn stale (old bytes live until the pin drops) -- but at a
  // safe point SynchronizeStreams has already drained the workers, so
  // pins here would be engine bugs that rule I1 flags.
  for (auto& gpu : gpus_) {
    if (gpu->cache == nullptr) continue;
    for (PageId pid : changed) (void)gpu->cache->Invalidate(pid);
  }
}

Status GtsEngine::QuiesceIngestExclusive() {
  if (ingest_ == nullptr) {
    return Status::FailedPrecondition(
        "streaming ingestion is disabled; construct the engine with "
        "GtsOptions::ingest.enabled = true");
  }
  // Caller (JobScheduler::QuiesceIngest) holds the driver role: no run
  // is active, so no page cache exists (caches live only inside a run's
  // buffer setup) and nothing holds staged bytes -- the changed set
  // needs no invalidation.
  (void)ingest_->Quiesce();
  return Status::OK();
}

Status GtsEngine::SetupBuffers(GtsKernel* kernel) {
  const uint64_t page_size = graph_->config().page_size;
  const uint32_t wa_b = kernel->wa_bytes_per_vertex();
  const uint32_t ra_b = kernel->ra_bytes_per_vertex();
  const bool traversal = kernel->access_pattern() == AccessPattern::kTraversal;
  if (traversal && CountFrontier()) BuildDegreeTable();

  for (int g = 0; g < machine_.num_gpus; ++g) {
    GpuState& gpu = *gpus_[g];
    WaRange(g, traversal, &gpu.wa_begin, &gpu.wa_end);
    const uint64_t wa_bytes =
        static_cast<uint64_t>(gpu.wa_end - gpu.wa_begin) * wa_b;
    GTS_ASSIGN_OR_RETURN(gpu.wa_buf, gpu.device->Allocate(wa_bytes, "WABuf"));
    for (int s = 0; s < options_.num_streams; ++s) {
      GTS_ASSIGN_OR_RETURN(
          gpu::DeviceBuffer sp,
          gpu.device->Allocate(page_size, "SPBuf[" + std::to_string(s) + "]"));
      gpu.sp_buf.push_back(std::move(sp));
      GTS_ASSIGN_OR_RETURN(
          gpu::DeviceBuffer lp,
          gpu.device->Allocate(page_size, "LPBuf[" + std::to_string(s) + "]"));
      gpu.lp_buf.push_back(std::move(lp));
      if (ra_b > 0) {
        GTS_ASSIGN_OR_RETURN(
            gpu::DeviceBuffer ra,
            gpu.device->Allocate(
                static_cast<uint64_t>(max_slots_per_page_) * ra_b,
                "RABuf[" + std::to_string(s) + "]"));
        gpu.ra_buf.push_back(std::move(ra));
      }
    }
    // Section 3.3: free device memory becomes a topology-page cache for
    // BFS-like algorithms (full scans touch every page exactly once, so a
    // cache cannot help them and the paper disables it).
    if (traversal && options_.enable_cache && ra_b == 0) {
      const uint64_t avail = gpu.device->available();
      const uint64_t cache_bytes =
          options_.cache_bytes == GtsOptions::kAutoCacheBytes
              ? avail
              : std::min(options_.cache_bytes, avail);
      gpu.cache = std::make_unique<PageCache>(
          gpu.device.get(), cache_bytes, page_size, options_.cache_policy,
          registry_.get(), "cache.gpu" + std::to_string(g));
      gpu.cache->BindPinLog(&pin_events_);
    }
    if (traversal) {
      gpu.local_next = std::make_unique<PidSet>(graph_->num_pages());
      if (CountFrontier()) gpu.local_next->EnableCounting();
    }
    gpu.stream_work.assign(options_.num_streams, WorkStats{});
    gpu.stream_last_kind.assign(options_.num_streams, -1);
    gpu.rr = 0;
  }

  if (options_.cpu_assist_fraction > 0.0) {
    if (options_.strategy == Strategy::kScalability &&
        machine_.num_gpus > 1 && !traversal) {
      return Status::FailedPrecondition(
          "CPU co-processing needs Strategy-P (Strategy-S replicates the "
          "whole stream to every processor already)");
    }
    cpu_ = std::make_unique<CpuState>();
    cpu_->wa.resize(static_cast<uint64_t>(graph_->num_vertices()) * wa_b);
    if (traversal) {
      cpu_->local_next = std::make_unique<PidSet>(graph_->num_pages());
      if (CountFrontier()) cpu_->local_next->EnableCounting();
    }
    cpu_->lane_work.assign(
        static_cast<size_t>(machine_.time_model.cpu_worker_threads),
        WorkStats{});
    // Like gpu.rr above: the lane cursor starts every run at 0 so two
    // identical runs produce identical per-lane WorkStats (CpuState is
    // recreated per run today, but the reset must not depend on that).
    cpu_->rr = 0;
  }
  return Status::OK();
}

void GtsEngine::ReleaseBuffers() {
  for (auto& gpu : gpus_) {
    gpu->wa_buf.Reset();
    gpu->sp_buf.clear();
    gpu->lp_buf.clear();
    gpu->ra_buf.clear();
    gpu->cache.reset();
    gpu->local_next.reset();
  }
  cpu_.reset();
}

bool GtsEngine::AssignToCpu(PageId pid) const {
  if (cpu_ == nullptr) return false;
  // Deterministic multiplicative hash of the page id.
  const uint32_t h = static_cast<uint32_t>(pid) * 2654435761u;
  return static_cast<double>(h >> 8 & 0xFFFFFF) / 16777216.0 <
         options_.cpu_assist_fraction;
}

gpu::OpIndex GtsEngine::RecordOp(gpu::TimelineOp op) {
  analysis::sync::Lock lock(record_mu_);
  return recorder_.Add(op);
}

void GtsEngine::PatchKernelDuration(gpu::OpIndex idx, SimTime duration) {
  analysis::sync::Lock lock(record_mu_);
  // Safe: Add() only appends, and idx was returned by a previous Add.
  // Adds on top of any switch overhead recorded at issue time.
  recorder_.op(idx).duration += duration;
}

Status GtsEngine::ProcessPageOnCpu(GtsKernel* kernel, PageId pid,
                                   uint32_t cur_level,
                                   RunMetrics* metrics) {
  const PageKind kind = graph_->kind(pid);
  const TimeModel& tm = machine_.time_model;
  const uint32_t ra_b = kernel->ra_bytes_per_vertex();
  const uint8_t* host_ra = kernel->host_ra();

  GTS_ASSIGN_OR_RETURN(io::IoEngine::Fetched fetch, io_->Acquire(pid));
  const gpu::OpIndex fetch_dep = fetch.fetch_op;

  const int lane = cpu_->rr;
  cpu_->rr = (cpu_->rr + 1) % tm.cpu_worker_threads;

  // Recorded before execution (duration patched in afterwards, like the
  // GPU path) so the op index exists for race-site attribution. Trace
  // order is unchanged: nothing else records between the two calls on
  // this thread, and stream workers only patch.
  gpu::TimelineOp kop;
  kop.kind = gpu::OpKind::kKernel;
  kop.stream_key = (1 << 20) + lane;  // dedicated CPU lanes
  kop.resource = {gpu::ResourceId::Type::kHostCpuPool, 0};
  kop.dep0 = fetch_dep;
  kop.page = pid;
  kop.duration = 0.0;
  const gpu::OpIndex kidx = RecordOp(kop);

  KernelContext ctx;
  ctx.rvt = &graph_->rvt();
  ctx.wa = cpu_->wa.data();
  ctx.wa_begin = 0;
  ctx.wa_end = graph_->num_vertices();
  const VertexId start_vid = graph_->rvt().entry(pid).start_vid;
  ctx.ra = ra_b > 0 && host_ra != nullptr
               ? host_ra + static_cast<uint64_t>(start_vid) * ra_b
               : nullptr;
  ctx.ra_start_vid = start_vid;
  ctx.cur_level = cur_level;
  ctx.next_pid_set = cpu_->local_next.get();
  if (cpu_->local_next != nullptr && cpu_->local_next->counting()) {
    ctx.out_degrees = out_degrees_.data();
  }
  ctx.micro = options_.micro;

#if GTS_RACE_CHECK_ENABLED
  if (race_ != nullptr) {
    if (!fetch.buffer_hit) {
      race_->OnPageStaged(static_cast<int>(fetch.device_index), pid,
                          fetch.fetch_op);
    }
    race_->OnPageDelivered(pid);
    const int cl = race_->CpuLane(lane, (1 << 20) + lane);
    race_->BeginOp(cl);
    race_->Join(cl, race_->HostLane());
    // The CPU lane reads the page straight out of MMBuf.
    race_->OnPageAccess(cl, analysis::RaceDetector::kMmbufDomain, pid,
                        /*write=*/false, kidx);
    ctx.race_site = {race_.get(), cl, analysis::RaceDetector::kCpuWaDomain,
                     kidx, pid};
  }
#endif

  // Streaming ingestion: the MMBuf bytes are the installed base image;
  // pending deltas are overlaid onto a host-local copy (the shared MMBuf
  // copy stays untouched -- every consumer overlays its own staging).
  const uint8_t* page_data = fetch.data;
  std::vector<uint8_t> patched;
  if (ingest_ != nullptr && ingest_->HasDeltas(pid)) {
    patched.assign(fetch.data, fetch.data + graph_->config().page_size);
    (void)ingest_->Overlay(pid, patched.data());
    page_data = patched.data();
  }

  PageView view(page_data, graph_->config());
  const WorkStats work = kind == PageKind::kSmall ? kernel->RunSp(view, ctx)
                                                  : kernel->RunLp(view, ctx);
  cpu_->lane_work[lane] += work;

  // One worker core: no warp parallelism, no coalescing, but no PCI-E.
  PatchKernelDuration(
      kidx,
      static_cast<double>(work.warp_cycles) * tm.warp_cycle_seconds *
          tm.cpu_cycle_multiplier +
      static_cast<double>(work.mem_transactions) *
          kernel->seconds_per_mem_transaction(tm) * tm.cpu_mem_multiplier);

  ++metrics->cpu_pages;
  if (kind == PageKind::kSmall) {
    ++metrics->sp_kernel_calls;
  } else {
    ++metrics->lp_kernel_calls;
  }
  return Status::OK();
}

void GtsEngine::UploadWa(GtsKernel* kernel) {
  const TimeModel& tm = machine_.time_model;
  const uint32_t wa_b = kernel->wa_bytes_per_vertex();
  if (cpu_ != nullptr) {
    kernel->InitDeviceWa(cpu_->wa.data(), 0, graph_->num_vertices());
#if GTS_RACE_CHECK_ENABLED
    if (race_ != nullptr) {
      race_->OnWaAccess(race_->HostLane(), analysis::RaceDetector::kCpuWaDomain,
                        0, static_cast<uint32_t>(cpu_->wa.size()),
                        analysis::AccessClass::kPlainWrite, gpu::kNoOp,
                        kInvalidPageId);
    }
#endif
  }
  for (int g = 0; g < machine_.num_gpus; ++g) {
    GpuState& gpu = *gpus_[g];
    const uint64_t bytes =
        static_cast<uint64_t>(gpu.wa_end - gpu.wa_begin) * wa_b;
    gpu::TimelineOp op;
    op.kind = gpu::OpKind::kH2DChunk;
    op.stream_key = StreamKey(g, 0);
    op.resource = {gpu::ResourceId::Type::kCopyEngine, g};
    op.duration = static_cast<double>(bytes) / tm.c1;
    op.bytes = bytes;
    const gpu::OpIndex op_idx = RecordOp(op);
    kernel->InitDeviceWa(gpu.wa_buf.data(), gpu.wa_begin, gpu.wa_end);
#if GTS_RACE_CHECK_ENABLED
    if (race_ != nullptr) {
      // The WA upload is the copy engine writing WABuf. Every level-0
      // kernel has its page H2D serialized after this chunk on the same
      // copy engine, so fusing the copy lane with stream 0 here and with
      // each page's stream at its H2DStream (ProcessPages) carries the
      // upload->kernel happens-before edge without a global barrier.
      const int host = race_->HostLane();
      const int copy = race_->CopyLane(g);
      race_->Join(copy, host);
      race_->BeginOp(copy);
      race_->OnWaAccess(copy, analysis::RaceDetector::WaDomain(g), 0,
                        static_cast<uint32_t>(bytes),
                        analysis::AccessClass::kPlainWrite, op_idx,
                        kInvalidPageId);
      race_->Fuse(copy, race_->StreamLane(g, 0, StreamKey(g, 0)));
    }
#else
    (void)op_idx;
#endif
  }
}

void GtsEngine::DownloadWa(GtsKernel* kernel) {
  const TimeModel& tm = machine_.time_model;
  const uint32_t wa_b = kernel->wa_bytes_per_vertex();
  const int n_gpus = machine_.num_gpus;

  // WA sync happens after the whole pass completes (Step 3/4, Figure 5).
  {
    analysis::sync::Lock lock(record_mu_);
    recorder_.AddBarrier(0.0);
  }
#if GTS_RACE_CHECK_ENABLED
  // The download is barrier-ordered: its ops are recorded after the
  // AddBarrier above, so every kernel of the pass happens-before the
  // host-side absorb.
  if (race_ != nullptr) race_->BarrierAcquire();
#endif

  std::vector<gpu::OpIndex> d2h_idx(static_cast<size_t>(n_gpus), gpu::kNoOp);
  if (options_.strategy == Strategy::kPerformance && n_gpus > 1) {
    // Peer-to-peer merge into the master GPU, then one D2H (Section 4.1).
    const uint64_t bytes =
        static_cast<uint64_t>(graph_->num_vertices()) * wa_b;
    for (int g = 1; g < n_gpus; ++g) {
      gpu::TimelineOp p2p;
      p2p.kind = gpu::OpKind::kP2P;
      p2p.resource = {gpu::ResourceId::Type::kCopyEngine, 0};  // lands on master
      p2p.duration = static_cast<double>(bytes) / tm.p2p_bandwidth;
      p2p.bytes = bytes;
      RecordOp(p2p);
    }
    gpu::TimelineOp d2h;
    d2h.kind = gpu::OpKind::kD2H;
    d2h.resource = {gpu::ResourceId::Type::kCopyEngine, 0};
    d2h.duration = static_cast<double>(bytes) / tm.c1;
    d2h.bytes = bytes;
    const gpu::OpIndex idx = RecordOp(d2h);
    for (int g = 0; g < n_gpus; ++g) d2h_idx[static_cast<size_t>(g)] = idx;
  } else {
    for (int g = 0; g < n_gpus; ++g) {
      GpuState& gpu = *gpus_[g];
      const uint64_t bytes =
          static_cast<uint64_t>(gpu.wa_end - gpu.wa_begin) * wa_b;
      gpu::TimelineOp d2h;
      d2h.kind = gpu::OpKind::kD2H;
      d2h.resource = {gpu::ResourceId::Type::kCopyEngine, g};
      d2h.duration = static_cast<double>(bytes) / tm.c1;
      d2h.bytes = bytes;
      d2h_idx[static_cast<size_t>(g)] = RecordOp(d2h);
    }
  }

  // Execution: fold every device replica/chunk into the host arrays.
  for (int g = 0; g < n_gpus; ++g) {
    GpuState& gpu = *gpus_[g];
    kernel->AbsorbDeviceWa(gpu.wa_buf.data(), gpu.wa_begin, gpu.wa_end);
#if GTS_RACE_CHECK_ENABLED
    if (race_ != nullptr) {
      race_->OnWaAccess(race_->HostLane(),
                        analysis::RaceDetector::WaDomain(g), 0,
                        static_cast<uint32_t>(
                            static_cast<uint64_t>(gpu.wa_end - gpu.wa_begin) *
                            wa_b),
                        analysis::AccessClass::kPlainRead,
                        d2h_idx[static_cast<size_t>(g)], kInvalidPageId);
    }
#endif
  }
  if (cpu_ != nullptr) {
    // Host-internal; crosses no PCI-E link, so no timeline op.
    kernel->AbsorbDeviceWa(cpu_->wa.data(), 0, graph_->num_vertices());
#if GTS_RACE_CHECK_ENABLED
    if (race_ != nullptr) {
      race_->OnWaAccess(race_->HostLane(),
                        analysis::RaceDetector::kCpuWaDomain, 0,
                        static_cast<uint32_t>(cpu_->wa.size()),
                        analysis::AccessClass::kPlainRead, gpu::kNoOp,
                        kInvalidPageId);
    }
#endif
  }
  if (options_.io.wa_snapshot) {
    // Spill each GPU's downloaded WA replica/chunk to storage through the
    // io write path: the write queues behind pending reads on its device
    // and is recorded as kStorageWrite depending on the D2H that produced
    // the bytes, so checkpoint traffic contends in the simulated schedule
    // instead of being invisible. Layout: past the striped page region,
    // GPUs round-robined over devices, chunks packed in GPU order -- the
    // same offsets every pass (a snapshot, not a journal).
    const size_t n_dev = store_->num_devices();
    std::vector<uint64_t> cursor(n_dev);
    for (size_t d = 0; d < n_dev; ++d) cursor[d] = store_->DevicePageBytes(d);
    for (int g = 0; g < n_gpus; ++g) {
      GpuState& gpu = *gpus_[g];
      const uint64_t bytes =
          static_cast<uint64_t>(gpu.wa_end - gpu.wa_begin) * wa_b;
      if (bytes == 0) continue;
      const size_t d = static_cast<size_t>(g) % n_dev;
      auto wrote = io_->Write(d, cursor[d], gpu.wa_buf.data(), bytes,
                              d2h_idx[static_cast<size_t>(g)]);
      GTS_CHECK_OK(wrote.status());
      cursor[d] += bytes;
    }
  }
#if GTS_RACE_CHECK_ENABLED
  if (race_ != nullptr) race_->BarrierRelease();
#endif
}

void GtsEngine::SynchronizeStreams() {
  if (!options_.use_stream_threads) return;
  for (auto& gpu : gpus_) {
    for (auto& stream : gpu->streams) stream->Synchronize();
  }
}

std::vector<PageId> GtsEngine::PlanPass(std::vector<PageId> sps,
                                        std::vector<PageId> lps,
                                        const PidSet* frontier) {
  PageOrderContext ctx;
  // Cache residency is queried lazily inside Order() -- after BeginPass
  // has planned the partition -- so cache-affinity composes with
  // degree-balanced assignment. Contains() touches no cache statistics.
  bool any_cache = false;
  for (const auto& gpu : gpus_) any_cache |= gpu->cache != nullptr;
  if (any_cache) {
    ctx.is_cached = [this](PageId pid) {
      const int g = pipeline_->replicates() ? 0 : pipeline_->AssignGpu(pid);
      const auto& cache = gpus_[g]->cache;
      return cache != nullptr && cache->Contains(pid);
    };
  }
  if (frontier != nullptr && frontier->counting()) {
    ctx.frontier_count = [frontier](PageId pid) {
      return frontier->CountOf(pid);
    };
  }
  std::vector<PageId> ordered =
      pipeline_->PlanPass(std::move(sps), std::move(lps), *graph_, ctx);

  // The transfer backend turns the ordered list into the storage demand
  // sequence (pages that will actually reach Acquire) and primes the io
  // prefetcher, then resolves the pass's transfer mode (page-stream vs
  // direct; see src/transfer/). The demand filter runs through the
  // Env::will_demand closure -- RoutePage + cache Contains, the same
  // routing the dispatch loops use -- so the plan cannot drift from the
  // actual routing.
  transfer::PassInfo pass_info;
  pass_info.ordered = &ordered;
  pass_info.frontier = frontier;
  transfer_->BeginPass(pass_info);
  return ordered;
}

GtsEngine::PageRoute GtsEngine::RoutePage(PageId pid) const {
  PageRoute route;
  if (!pipeline_->replicates() && AssignToCpu(pid)) {
    route.cpu = true;
    return route;  // last_gpu stays below first_gpu: no GPU leg
  }
  route.first_gpu = pipeline_->replicates() ? 0 : pipeline_->AssignGpu(pid);
  route.last_gpu =
      pipeline_->replicates() ? machine_.num_gpus - 1 : route.first_gpu;
  return route;
}

Status GtsEngine::ProcessPages(GtsKernel* kernel,
                               const std::vector<PageId>& pids,
                               uint32_t cur_level, RunMetrics* metrics) {
  if (options_.use_stream_threads && options_.dispatch.work_stealing) {
    return ProcessPagesPull(kernel, pids, cur_level, metrics);
  }
  GTS_PROF_SCOPE("engine.process_pages");
  for (PageId pid : pids) {
    const PageRoute route = RoutePage(pid);
    if (route.cpu) {
      GTS_RETURN_IF_ERROR(ProcessPageOnCpu(kernel, pid, cur_level, metrics));
      continue;
    }
    const PageKind kind = graph_->kind(pid);
    for (int g = route.first_gpu; g <= route.last_gpu; ++g) {
      GpuState& gpu = *gpus_[g];
      const int s = pipeline_->AssignStream(static_cast<int>(kind),
                                            gpu.stream_last_kind, &gpu.rr);
      GTS_RETURN_IF_ERROR(StreamPageToGpu(kernel, pid, g, s, cur_level,
                                          metrics, /*pull=*/false,
                                          /*stolen=*/false));
    }
  }
  return Status::OK();
}

Status GtsEngine::ProcessPagesPull(GtsKernel* kernel,
                                   const std::vector<PageId>& pids,
                                   uint32_t cur_level, RunMetrics* metrics) {
  GTS_PROF_SCOPE("engine.process_pages");
  const int n_gpus = machine_.num_gpus;
  const int n_streams = options_.num_streams;

  // Publish the whole pass up front. The legacy Assign step picks each
  // item's home (gpu, stream) -- sticky's kind affinity keeps meaning as
  // the steal hint -- and replicated pages fan out as one gpu-bound item
  // per GPU (each GPU must run its own copy; only partitioned items may
  // later migrate across GPUs).
  ReadyQueue queue(n_gpus, n_streams, work_item_seq_);
  queue.BindEventLog(&dispatch_events_);
  queue.BindMetrics(&registry_->GetDistribution("dispatch.queue_wait"),
                    &registry_->GetCounter("dispatch.steals"));
  std::vector<PageId> cpu_pages;
  for (PageId pid : pids) {
    const PageRoute route = RoutePage(pid);
    if (route.cpu) {
      cpu_pages.push_back(pid);
      continue;
    }
    const PageKind kind = graph_->kind(pid);
    const bool gpu_bound = route.last_gpu > route.first_gpu;
    for (int g = route.first_gpu; g <= route.last_gpu; ++g) {
      GpuState& gpu = *gpus_[g];
      const int s = pipeline_->AssignStream(static_cast<int>(kind),
                                            gpu.stream_last_kind, &gpu.rr);
      queue.Push(pid, g, s, static_cast<int>(kind), gpu_bound);
    }
  }
  // All ids for this pass are assigned; the next pass continues the run's
  // sequence so the R9 audit's per-item key stays unique across passes.
  work_item_seq_ = queue.next_id();

  // Hybrid CPU-assist pages run on the host thread *before* the workers
  // start: ProcessPageOnCpu reads its page straight out of MMBuf, which
  // concurrent worker Acquires may evict mid-kernel. Simulated time is
  // unaffected (op overlap is the simulator's business); only host
  // wall-clock loses the CPU/GPU overlap, and cpu_assist_fraction is 0
  // in every paper configuration.
  for (PageId pid : cpu_pages) {
    GTS_RETURN_IF_ERROR(ProcessPageOnCpu(kernel, pid, cur_level, metrics));
  }

  // Cross-GPU steals need WA replicated on every device (Strategy-P);
  // under Strategy-S every item is gpu-bound anyway (replicated stream).
  const bool allow_cross =
      options_.strategy == Strategy::kPerformance && n_gpus > 1;
  std::mutex error_mu;
  Status first_error;
  for (int g = 0; g < n_gpus; ++g) {
    for (int s = 0; s < n_streams; ++s) {
      gpus_[g]->streams[s]->Enqueue([this, kernel, cur_level, metrics, &queue,
                                     &error_mu, &first_error, allow_cross, g,
                                     s] {
        ClaimContext ctx;
        ctx.gpu = g;
        ctx.stream = s;
        ctx.stream_key = StreamKey(g, s);
        ctx.allow_cross_gpu = allow_cross;
        const uint32_t batch = options_.dispatch.steal_batch;
        std::vector<WorkItem> items;
        WorkItem item;
        bool done = false;
        while (!done) {
          // stream_last_kind[s] is owner-exclusive: only this worker
          // processes on (g, s), so the unlocked read is safe.
          ctx.last_kind = gpus_[g]->stream_last_kind[s];
          if (batch > 1) {
            if (!pipeline_->ClaimWorkBatch(queue, ctx, batch, &items)) break;
          } else {
            // batch == 1 takes the exact pre-batching claim call.
            if (!pipeline_->ClaimWork(queue, ctx, &item)) break;
            items.assign(1, item);
          }
          for (const WorkItem& claimed : items) {
            Status status = StreamPageToGpu(kernel, claimed.pid, g, s,
                                            cur_level, metrics, /*pull=*/true,
                                            claimed.stolen);
            if (!status.ok()) {
              std::lock_guard<std::mutex> lock(error_mu);
              if (first_error.ok()) first_error = std::move(status);
              done = true;
              break;
            }
          }
        }
      });
    }
  }
  // The queue and error slot live on this frame: drain every worker
  // before returning (the caller's SynchronizeStreams is then a no-op).
  // A worker that errored stops claiming; its siblings still drain the
  // queue, and the first error surfaces after the pass settles.
  for (auto& gpu : gpus_) {
    for (auto& stream : gpu->streams) stream->Synchronize();
  }
  return first_error;
}

Status GtsEngine::StreamPageToGpu(GtsKernel* kernel, PageId pid, int g,
                                  int s, uint32_t cur_level,
                                  RunMetrics* metrics, bool pull,
                                  bool stolen) {
  const TimeModel& tm = machine_.time_model;
  const PageConfig& config = graph_->config();
  const uint64_t page_size = config.page_size;
  const uint32_t ra_b = kernel->ra_bytes_per_vertex();
  const double sec_per_cycle = tm.warp_cycle_seconds;
  const double sec_per_mem = kernel->seconds_per_mem_transaction(tm);
  const uint8_t* host_ra = kernel->host_ra();
  const PageKind kind = graph_->kind(pid);
  GpuState& gpu = *gpus_[g];
  const int stream_key = StreamKey(g, s);

  // Pull mode serializes the host-side phase: Acquire can evict the
  // MMBuf bytes another worker is mid-copy on, and the recorded op order
  // must be internally consistent per stream. Released before the kernel
  // executes -- that part is the parallelism.
  analysis::sync::UniqueLock host_phase(dispatch_mu_,
                                      analysis::sync::UniqueLock::kDefer);
  if (pull) host_phase.lock();

  // Host-side routing against cachedPIDMap (Algorithm 1 line 16). A
  // hit returns an RAII Pin: the lease blocks eviction, so the kernel
  // can run in place against the cached device page even while Insert
  // calls on other stream threads evict around it. The Pin is move-only
  // and moves straight into the execute closure (gpu::Task), no heap
  // wrapper needed.
  PageCache::Pin pin =
      gpu.cache != nullptr ? gpu.cache->Lookup(pid) : PageCache::Pin();
  const bool cached = pin.valid();

  // Holds streamed page bytes alive for the enqueued closure (thread
  // mode); unused on a cache hit, where the pinned bytes are read
  // directly.
  std::vector<uint8_t> staging;

  const uint8_t* ra_src = nullptr;  // host RA subvector
  uint64_t ra_bytes = 0;
  VertexId ra_start_vid = 0;

  if (!cached) {
    staging.resize(page_size);
    transfer::StageRequest sreq;
    sreq.pid = pid;
    sreq.gpu = g;
    sreq.stream_key = stream_key;
    sreq.stolen = stolen;
    GTS_ASSIGN_OR_RETURN(transfer::StagedPage staged, transfer_->Stage(sreq));
    ++metrics->pages_streamed;
    metrics->transfer_bytes += staged.bytes;
    if (staged.direct) {
      ++metrics->direct_pages;
      metrics->direct_bytes += staged.bytes;
    }

#if GTS_RACE_CHECK_ENABLED
    if (race_ != nullptr) {
      // storage -> MMBuf event, then host consumes the bytes.
      if (!staged.buffer_hit) {
        race_->OnPageStaged(static_cast<int>(staged.device_index), pid,
                            staged.fetch_op);
      }
      race_->OnPageDelivered(pid);
      // The copy engine reads the staged MMBuf bytes into the stream
      // buffer; fusing with the stream carries the transfer->kernel
      // happens-before edge (CUDA in-stream ordering).
      const int copy = race_->CopyLane(g);
      race_->Join(copy, race_->HostLane());
      race_->BeginOp(copy);
      race_->OnPageAccess(copy, analysis::RaceDetector::kMmbufDomain, pid,
                          /*write=*/false, staged.transfer_op);
      race_->Fuse(copy, race_->StreamLane(g, s, stream_key));
    }
#endif

    if (ra_b > 0 && host_ra != nullptr) {
      const RvtEntry& rvt_entry = graph_->rvt().entry(pid);
      ra_start_vid = rvt_entry.start_vid;
      const uint32_t covered =
          kind == PageKind::kSmall ? graph_->view(pid).num_slots() : 1;
      ra_bytes = static_cast<uint64_t>(covered) * ra_b;
      ra_src = host_ra + ra_start_vid * ra_b;

      gpu::TimelineOp ra_op;
      ra_op.kind = gpu::OpKind::kH2DStream;
      ra_op.stream_key = stream_key;
      ra_op.resource = {gpu::ResourceId::Type::kCopyEngine, g};
      ra_op.duration = static_cast<double>(ra_bytes) / tm.c2;
      ra_op.bytes = ra_bytes;
      ra_op.page = pid;
      RecordOp(ra_op);
    }

    // Copied while the host phase owns the MMBuf bytes: in pull mode a
    // sibling worker's Acquire may evict `staged.data` the moment
    // dispatch_mu_ is released.
    std::memcpy(staging.data(), staged.data, page_size);
    // Streaming ingestion: patch the staged copy with the page's pending
    // delta chain (the MMBuf copy stays the installed base image).
    if (ingest_ != nullptr) (void)ingest_->Overlay(pid, staging.data());
  }
  // On a cache hit only the kernel call is issued (line 17); cached
  // kernels never carry RA (SetupBuffers enables the cache only for
  // RA-free traversal kernels). With ingestion the hit is version-safe:
  // publishes invalidate changed pages, so a surviving entry's bytes
  // already equal installed image + chain as of the current epoch.

  gpu::TimelineOp kop;
  kop.kind = gpu::OpKind::kKernel;
  kop.stream_key = stream_key;
  kop.resource = {gpu::ResourceId::Type::kKernelPool, g};
  // Switching between the SP and LP kernels on a stream costs extra
  // (Section 3.2); the work-dependent time is added after execution.
  kop.duration = 0.0;
  if (gpu.stream_last_kind[s] >= 0 &&
      gpu.stream_last_kind[s] != static_cast<int>(kind)) {
    kop.duration = tm.kernel_switch_overhead;
  }
  gpu.stream_last_kind[s] = static_cast<int>(kind);
  kop.page = pid;
  kop.stolen = stolen;
  const gpu::OpIndex kidx = RecordOp(kop);
  if (kind == PageKind::kSmall) {
    ++metrics->sp_kernel_calls;
  } else {
    ++metrics->lp_kernel_calls;
  }

  const bool insert_into_cache = gpu.cache != nullptr && !cached;
  // Captured in the host phase: PageVersion may only move at safe
  // points, but the execute closure can run after this pass's sync.
  const uint64_t page_version =
      ingest_ != nullptr ? ingest_->PageVersion(pid) : 0;
  int race_lane = 0;
#if GTS_RACE_CHECK_ENABLED
  if (race_ != nullptr) {
    // Issue edge: the kernel launch is a host action, so everything
    // that happened-before the launch happens-before the kernel.
    // Later host actions are NOT ordered before it (Join ticks host).
    race_lane = race_->StreamLane(g, s, stream_key);
    race_->BeginOp(race_lane);
    race_->Join(race_lane, race_->HostLane());
    if (cached) {
      race_->OnPageAccess(race_lane, analysis::RaceDetector::CacheDomain(g),
                          pid, /*write=*/false, kidx);
    } else if (insert_into_cache) {
      race_->OnPageAccess(race_lane, analysis::RaceDetector::CacheDomain(g),
                          pid, /*write=*/true, kidx);
    }
  }
#endif
  GpuState* gpu_ptr = &gpu;
  const double launch_overhead = tm.kernel_launch_overhead;
  auto execute = [this, kernel, gpu_ptr, pin = std::move(pin),
                  staging = std::move(staging), ra_src, ra_bytes,
                  ra_start_vid, kind, cur_level, g, s, kidx, race_lane,
                  sec_per_cycle, sec_per_mem, insert_into_cache, pid, config,
                  launch_overhead, page_version]() {
    GpuState& st = *gpu_ptr;
    const uint8_t* page_bytes = nullptr;
    if (pin.valid()) {
      // Cache hit (Algorithm 1 line 17): run the kernel in place
      // against the pinned device page; no copy is needed and the Pin
      // keeps the buffer alive until this closure is destroyed.
      page_bytes = pin.data();
    } else {
      // "Copy" into the device stream buffer, then run the kernel
      // there.
      uint8_t* dst = kind == PageKind::kSmall ? st.sp_buf[s].data()
                                              : st.lp_buf[s].data();
      std::memcpy(dst, staging.data(), staging.size());
      page_bytes = dst;
    }
    if (ra_src != nullptr) {
      std::memcpy(st.ra_buf[s].data(), ra_src, ra_bytes);
    }

    KernelContext ctx;
    ctx.rvt = &graph_->rvt();
    ctx.wa = st.wa_buf.data();
    ctx.wa_begin = st.wa_begin;
    ctx.wa_end = st.wa_end;
    ctx.ra = ra_src != nullptr ? st.ra_buf[s].data() : nullptr;
    ctx.ra_start_vid = ra_start_vid;
    ctx.cur_level = cur_level;
    ctx.next_pid_set = st.local_next.get();
    if (st.local_next != nullptr && st.local_next->counting()) {
      ctx.out_degrees = out_degrees_.data();
    }
    ctx.micro = options_.micro;
#if GTS_RACE_CHECK_ENABLED
    if (race_ != nullptr) {
      ctx.race_site = {race_.get(), race_lane,
                       analysis::RaceDetector::WaDomain(g), kidx, pid};
    }
#else
    (void)g;
    (void)race_lane;
#endif

    PageView view(page_bytes, config);
    const WorkStats work = kind == PageKind::kSmall ? kernel->RunSp(view, ctx)
                                                    : kernel->RunLp(view, ctx);
    st.stream_work[s] += work;
    PatchKernelDuration(
        kidx, launch_overhead +
                  static_cast<double>(work.warp_cycles) * sec_per_cycle +
                  static_cast<double>(work.mem_transactions) * sec_per_mem);
    if (insert_into_cache) {
      // Device-internal copy; deliberately not a timeline op (it does
      // not cross PCI-E). Failure is cache-full backpressure (counted
      // by the cache) -- the page simply stays on the streaming path.
      (void)st.cache->Insert(pid, page_bytes, page_version);
    }
  };

  if (pull) {
    // The calling thread IS the stream worker: run the kernel inline,
    // outside the host-phase lock.
    host_phase.unlock();
    execute();
  } else if (options_.use_stream_threads) {
    gpu.streams[s]->Enqueue(std::move(execute));
  } else {
    execute();
  }
  return Status::OK();
}

Result<RunMetrics> GtsEngine::RunInto(GtsKernel* kernel, RunReport* report,
                                      VertexId source,
                                      int max_levels_override) {
  GTS_ASSIGN_OR_RETURN(RunMetrics increment,
                       Run(kernel, source, max_levels_override));
  report->Accumulate(increment);
  report->snapshot = registry_->Snapshot();
  return increment;
}

Result<RunMetrics> GtsEngine::RunPassInto(GtsKernel* kernel,
                                          RunReport* report,
                                          const std::vector<PageId>& pages,
                                          uint32_t level) {
  GTS_ASSIGN_OR_RETURN(RunMetrics increment, RunPass(kernel, pages, level));
  report->Accumulate(increment);
  report->snapshot = registry_->Snapshot();
  return increment;
}

Result<RunMetrics> GtsEngine::Run(GtsKernel* kernel, VertexId source,
                                  int max_levels_override) {
  // Thin shim over the scheduler's single-job path, which routes back
  // into RunDirect -- byte-identical to the pre-scheduler engine.
  JobOptions options;
  options.source = source;
  options.max_levels_override = max_levels_override;
  JobHandle handle = scheduler_->Submit(kernel, options);
  GTS_ASSIGN_OR_RETURN(RunReport report, handle.Wait());
  return report.metrics;
}

Result<RunMetrics> GtsEngine::ExecuteJob(JobExec* exec) {
  if (exec->is_pass) {
    return RunPassDirect(exec->kernel, exec->pages, exec->pass_level,
                         &exec->cancel, &exec->options);
  }
  return RunDirect(exec->kernel, exec->options.source,
                   exec->options.max_levels_override, &exec->cancel,
                   &exec->options);
}

Result<RunMetrics> GtsEngine::RunDirect(GtsKernel* kernel, VertexId source,
                                        int max_levels_override,
                                        std::atomic<bool>* cancel,
                                        const JobOptions* jopts) {
  GTS_PROF_SCOPE("engine.run");
  const int max_levels =
      max_levels_override >= 0 ? max_levels_override : options_.max_levels;
  const bool traversal =
      kernel->access_pattern() == AccessPattern::kTraversal;
  if (traversal &&
      (source == kInvalidVertexId || source >= graph_->num_vertices())) {
    return Status::InvalidArgument("traversal kernel needs a source vertex");
  }

  Status setup = SetupBuffers(kernel);
  if (!setup.ok()) {
    ReleaseBuffers();
    return setup;
  }

  {
    analysis::sync::Lock lock(record_mu_);
    recorder_.Clear();
  }
  store_->ResetStats();
  io_->ResetStats();
  pin_events_.Clear();
  io_events_.Clear();
  dispatch_events_.Clear();
  work_item_seq_ = 0;
#if GTS_RACE_CHECK_ENABLED
  if (race_ != nullptr) race_->BeginRun();
#endif
  // Safe point: the run opens on a freshly published graph version (its
  // priced delta/rewrite writes land in this run's schedule), and the
  // degree table follows the publish epoch.
  PublishIngest();
  if (traversal && CountFrontier()) BuildDegreeTable();
  RunMetrics metrics;
  const TimeModel& tm = machine_.time_model;

  UploadWa(kernel);

  Status run_status;
  if (!traversal) {
    // PageRank-like: one pass over all SPs, then all LPs (Section 3.2),
    // reordered per the dispatch pipeline's page-order policy.
    run_status = ProcessPages(
        kernel,
        PlanPass(graph_->small_page_ids(), graph_->large_page_ids(),
                 nullptr),
        0, &metrics);
    SynchronizeStreams();
    if (run_status.ok()) {
      DownloadWa(kernel);
      analysis::sync::Lock lock(record_mu_);
      recorder_.AddBarrier(tm.sync_overhead * machine_.num_gpus);
      metrics.levels = 1;
    }
  } else {
    // BFS-like: level-by-level over nextPIDSet (Section 3.3).
    PidSet frontier(graph_->num_pages());
    if (CountFrontier()) frontier.EnableCounting();
    // Seed with the source's out-degree: level 0 expands exactly the
    // source, so the page's active-edge count is its degree.
    frontier.Set(graph_->PageOfVertex(source),
                 out_degrees_.empty() ? 1 : out_degrees_[source]);
    int level = 0;
    uint64_t prev_updates = 0;  // for per-level WA-delta sizing
    while (!frontier.Empty() && level < max_levels) {
      // Cancellation probe (JobHandle::Cancel): level boundaries are the
      // documented cancellation points; a null pointer (or an unset flag)
      // costs one relaxed load and changes no recorded op.
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        run_status = Status::Cancelled("job cancelled at level boundary");
        break;
      }
      // Per-job streamed-bytes quota, enforced at the same boundaries as
      // cancellation: a job at or over its cap retires with
      // ResourceExhausted (completed levels are not rolled back).
      if (jopts != nullptr && jopts->max_streamed_bytes > 0 &&
          metrics.transfer_bytes >= jopts->max_streamed_bytes) {
        registry_->GetCounter("jobs.quota_deferrals").Add();
        run_status = Status::ResourceExhausted(
            "job hit max_streamed_bytes: " +
            std::to_string(metrics.transfer_bytes) + " B streamed, quota " +
            std::to_string(jopts->max_streamed_bytes) + " B");
        break;
      }
      // Mid-run safe point: fold newly appended ingest updates in unless
      // the job pinned the run-start graph version.
      if (level > 0 && (jopts == nullptr || !jopts->pin_graph_version)) {
        PublishIngest();
        if (CountFrontier()) BuildDegreeTable();
      }
      std::vector<PageId> sps;
      std::vector<PageId> lps;
      uint64_t skipped = 0;
      const std::vector<PageId> front_pages = frontier.ToVector();
      const uint32_t min_edges =
          EffectiveMinActiveEdges(frontier, front_pages);
      for (PageId pid : front_pages) {
        // Admission threshold: a page whose activated vertices hold fewer
        // than min_active_edges out-edges is not worth a stream slot this
        // level (at threshold 1 the cut is exact -- zero active edges
        // means zero possible expansions).
        if (min_edges > 0 && frontier.counting() &&
            frontier.CountOf(pid) < min_edges) {
          ++skipped;
          continue;
        }
        if (graph_->kind(pid) == PageKind::kSmall) {
          sps.push_back(pid);
        } else {
          // Record IDs address an LP vertex through its first chunk; the
          // RVT's LP_RANGE says how many continuation pages follow, and a
          // traversal must stream the whole run (Figure 1 / Appendix A).
          const uint32_t more = graph_->rvt().entry(pid).lp_more;
          for (uint32_t k = 0; k <= more; ++k) {
            lps.push_back(pid + k);
          }
        }
      }
      if (skipped > 0) {
        metrics.pages_skipped += skipped;
        registry_->GetCounter("dispatch.skipped_pages").Add(skipped);
      }
      if (kernel->collect_level_pages()) {
        std::vector<PageId> combined = sps;
        combined.insert(combined.end(), lps.begin(), lps.end());
        metrics.level_pages.push_back(std::move(combined));
      }
      for (auto& gpu : gpus_) gpu->local_next->Clear();
      if (cpu_ != nullptr) cpu_->local_next->Clear();

      run_status = ProcessPages(
          kernel, PlanPass(std::move(sps), std::move(lps), &frontier),
          static_cast<uint32_t>(level), &metrics);
      SynchronizeStreams();
      if (!run_status.ok()) break;
#if GTS_RACE_CHECK_ENABLED
      // The level boundary is a BSP barrier for the detector: the stream
      // sync above orders every kernel of this level before the host-side
      // frontier/WA merge below (the simulated D2H ops may still overlap
      // kernels in the timeline, but their *payload* is only read here).
      if (race_ != nullptr) race_->BarrierAcquire();
#endif

      // Per-level sync: local nextPIDSets (and, multi-GPU, WA) to host.
      frontier.Clear();
      for (int g = 0; g < machine_.num_gpus; ++g) {
        GpuState& gpu = *gpus_[g];
        gpu::TimelineOp d2h;
        d2h.kind = gpu::OpKind::kD2H;
        d2h.resource = {gpu::ResourceId::Type::kCopyEngine, g};
        d2h.duration =
            static_cast<double>(gpu.local_next->ByteSize()) / tm.c1;
        d2h.bytes = gpu.local_next->ByteSize();
        RecordOp(d2h);
        frontier.Union(*gpu.local_next);
      }
      if (cpu_ != nullptr) frontier.Union(*cpu_->local_next);
      if (machine_.num_gpus + (cpu_ != nullptr ? 1 : 0) > 1) {
        // Replicated traversal WA must propagate across GPUs between
        // levels. Only this level's updated entries travel: (vid, value)
        // pairs each way, not the whole vector (the paper notes the WA
        // synchronized per level "is usually negligible", Section 5.2).
        uint64_t total_updates = 0;
        for (auto& gpu : gpus_) {
          for (const WorkStats& w : gpu->stream_work) {
            total_updates += w.wa_updates;
          }
        }
        if (cpu_ != nullptr) {
          for (const WorkStats& w : cpu_->lane_work) {
            total_updates += w.wa_updates;
          }
        }
        const uint64_t level_updates = total_updates - prev_updates;
        prev_updates = total_updates;
        const uint64_t delta_bytes =
            level_updates * (kernel->wa_bytes_per_vertex() + 8);
        [[maybe_unused]] std::vector<gpu::OpIndex> delta_d2h;
        [[maybe_unused]] std::vector<gpu::OpIndex> delta_h2d;
        for (int g = 0; g < machine_.num_gpus; ++g) {
          gpu::TimelineOp d2h;
          d2h.kind = gpu::OpKind::kD2H;
          d2h.resource = {gpu::ResourceId::Type::kCopyEngine, g};
          d2h.duration =
              static_cast<double>(delta_bytes / machine_.num_gpus) / tm.c1;
          d2h.bytes = delta_bytes / machine_.num_gpus;
          delta_d2h.push_back(RecordOp(d2h));
          gpu::TimelineOp h2d;
          h2d.kind = gpu::OpKind::kH2DChunk;
          h2d.resource = {gpu::ResourceId::Type::kCopyEngine, g};
          h2d.duration = static_cast<double>(delta_bytes) / tm.c1;
          h2d.bytes = delta_bytes;
          delta_h2d.push_back(RecordOp(h2d));
        }
        // Execution: fold every replica into the host arrays, then refresh
        // every device replica from the merged state (equivalent to
        // applying the update lists).
        for (int g = 0; g < machine_.num_gpus; ++g) {
          GpuState& gpu = *gpus_[g];
          kernel->AbsorbDeviceWa(gpu.wa_buf.data(), gpu.wa_begin,
                                 gpu.wa_end);
#if GTS_RACE_CHECK_ENABLED
          if (race_ != nullptr) {
            race_->OnWaAccess(
                race_->HostLane(), analysis::RaceDetector::WaDomain(g), 0,
                static_cast<uint32_t>(
                    static_cast<uint64_t>(gpu.wa_end - gpu.wa_begin) *
                    kernel->wa_bytes_per_vertex()),
                analysis::AccessClass::kPlainRead, delta_d2h[g], kInvalidPageId);
          }
#endif
        }
        if (cpu_ != nullptr) {
          kernel->AbsorbDeviceWa(cpu_->wa.data(), 0, graph_->num_vertices());
#if GTS_RACE_CHECK_ENABLED
          if (race_ != nullptr) {
            race_->OnWaAccess(race_->HostLane(),
                              analysis::RaceDetector::kCpuWaDomain, 0,
                              static_cast<uint32_t>(cpu_->wa.size()),
                              analysis::AccessClass::kPlainRead, gpu::kNoOp,
                              kInvalidPageId);
          }
#endif
        }
        for (int g = 0; g < machine_.num_gpus; ++g) {
          GpuState& gpu = *gpus_[g];
          kernel->InitDeviceWa(gpu.wa_buf.data(), gpu.wa_begin, gpu.wa_end);
#if GTS_RACE_CHECK_ENABLED
          if (race_ != nullptr) {
            race_->OnWaAccess(
                race_->HostLane(), analysis::RaceDetector::WaDomain(g), 0,
                static_cast<uint32_t>(
                    static_cast<uint64_t>(gpu.wa_end - gpu.wa_begin) *
                    kernel->wa_bytes_per_vertex()),
                analysis::AccessClass::kPlainWrite, delta_h2d[g],
                kInvalidPageId);
          }
#endif
        }
        if (cpu_ != nullptr) {
          kernel->InitDeviceWa(cpu_->wa.data(), 0, graph_->num_vertices());
#if GTS_RACE_CHECK_ENABLED
          if (race_ != nullptr) {
            race_->OnWaAccess(race_->HostLane(),
                              analysis::RaceDetector::kCpuWaDomain, 0,
                              static_cast<uint32_t>(cpu_->wa.size()),
                              analysis::AccessClass::kPlainWrite, gpu::kNoOp,
                              kInvalidPageId);
          }
#endif
        }
      }
      gpu::TimelineOp merge;
      merge.kind = gpu::OpKind::kHostCompute;
      merge.duration = tm.host_merge_overhead;
      RecordOp(merge);
      {
        analysis::sync::Lock lock(record_mu_);
        recorder_.AddBarrier(tm.sync_overhead);
      }
#if GTS_RACE_CHECK_ENABLED
      // Release the barrier: the next level's kernels see everything the
      // host merged between levels.
      if (race_ != nullptr) race_->BarrierRelease();
#endif
      ++level;
    }
    metrics.levels = level;
    if (run_status.ok()) DownloadWa(kernel);
  }

  if (!run_status.ok()) {
    SynchronizeStreams();
    ReleaseBuffers();
    return run_status;
  }

  GTS_RETURN_IF_ERROR(FinalizeRun(&metrics));
  return metrics;
}

Result<RunMetrics> GtsEngine::RunPass(GtsKernel* kernel,
                                      const std::vector<PageId>& pages,
                                      uint32_t level) {
  JobHandle handle = scheduler_->SubmitPass(kernel, pages, level);
  GTS_ASSIGN_OR_RETURN(RunReport report, handle.Wait());
  return report.metrics;
}

Result<RunMetrics> GtsEngine::RunPassDirect(GtsKernel* kernel,
                                            const std::vector<PageId>& pages,
                                            uint32_t level,
                                            std::atomic<bool>* cancel,
                                            const JobOptions* jopts) {
  GTS_PROF_SCOPE("engine.run_pass");
  // A single pass has no interior cancellation point; honor a cancel
  // that lands before the pass starts streaming.
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("job cancelled at level boundary");
  }
  Status setup = SetupBuffers(kernel);
  if (!setup.ok()) {
    ReleaseBuffers();
    return setup;
  }
  {
    analysis::sync::Lock lock(record_mu_);
    recorder_.Clear();
  }
  store_->ResetStats();
  io_->ResetStats();
  pin_events_.Clear();
  io_events_.Clear();
  dispatch_events_.Clear();
  work_item_seq_ = 0;
#if GTS_RACE_CHECK_ENABLED
  if (race_ != nullptr) race_->BeginRun();
#endif
  // Safe point: a single pass streams exactly one published version.
  // (jopts is accepted for signature symmetry; a pass has no interior
  // quota/publish boundary.)
  (void)jopts;
  PublishIngest();
  if (kernel->access_pattern() == AccessPattern::kTraversal &&
      CountFrontier()) {
    BuildDegreeTable();
  }
  RunMetrics metrics;

  std::vector<PageId> sps;
  std::vector<PageId> lps;
  for (PageId pid : pages) {
    if (pid >= graph_->num_pages()) {
      ReleaseBuffers();
      return Status::InvalidArgument("page id out of range");
    }
    (graph_->kind(pid) == PageKind::kSmall ? sps : lps).push_back(pid);
  }

  UploadWa(kernel);
  Status run_status = ProcessPages(
      kernel, PlanPass(std::move(sps), std::move(lps), nullptr), level,
      &metrics);
  SynchronizeStreams();
  if (!run_status.ok()) {
    ReleaseBuffers();
    return run_status;
  }
  DownloadWa(kernel);
  {
    analysis::sync::Lock lock(record_mu_);
    recorder_.AddBarrier(machine_.time_model.sync_overhead *
                         machine_.num_gpus);
  }
  metrics.levels = 1;

  GTS_RETURN_IF_ERROR(FinalizeRun(&metrics));
  return metrics;
}

Status GtsEngine::FinalizeRun(RunMetrics* metrics) {
  GTS_PROF_SCOPE("engine.finalize_run");
  for (auto& gpu : gpus_) {
    for (const WorkStats& w : gpu->stream_work) metrics->work += w;
    if (gpu->cache != nullptr) {
      metrics->cache_lookups += gpu->cache->lookups();
      metrics->cache_hits += gpu->cache->hits();
      metrics->cache_backpressure += gpu->cache->insert_backpressure();
    }
  }
  if (cpu_ != nullptr) {
    for (const WorkStats& w : cpu_->lane_work) metrics->work += w;
    metrics->cpu_lane_work = cpu_->lane_work;
  }
  metrics->io = store_->stats();
  metrics->io_queue = io_->stats();
  if (ingest_ != nullptr) {
    // Ingest activity accrued since the previous harvest (publishes this
    // run triggered, plus background compactions that landed in between).
    const ingest::IngestStats is = ingest_->TakeRunStats();
    metrics->ingest_updates_applied = is.updates_applied;
    metrics->ingest_deltas_flushed = is.deltas_flushed;
    metrics->ingest_compactions = is.compactions;
    metrics->ingest_overlay_hits = is.overlay_hits;
  }

  std::vector<gpu::TimelineOp> ops;
  {
    analysis::sync::Lock lock(record_mu_);
    ops = recorder_.TakeOps();
  }
  gpu::ScheduleResult schedule =
      gpu::ScheduleSimulator(machine_.time_model).Run(std::move(ops));
  metrics->sim_seconds = schedule.makespan;
  metrics->transfer_busy =
      schedule.BusySeconds(gpu::ResourceId::Type::kCopyEngine);
  metrics->kernel_busy =
      schedule.BusySeconds(gpu::ResourceId::Type::kKernelPool);
  metrics->storage_busy =
      schedule.BusySeconds(gpu::ResourceId::Type::kStorageDevice);

  // gts::analysis: harvest the race detector (compiled builds only) and
  // replay the schedule through the invariant validator. Both run before
  // the timeline is (possibly) moved into metrics.
  analysis::RaceReport& report = metrics->analysis;
#if GTS_RACE_CHECK_ENABLED
  if (race_ != nullptr) {
    race_->ResolveTimestamps(schedule);
    report.Accumulate(race_->TakeReport());
  }
#endif
  if (options_.analysis.validate_schedule) {
    analysis::ScheduleValidator validator(
        analysis::ValidatorOptions{1e-12, options_.analysis.max_reported});
    validator.Check(schedule, &report);
    validator.CheckPinEvents(pin_events_.Take(), &report);
    validator.CheckIoEvents(io_events_.Take(), &report);
    validator.CheckDispatchEvents(dispatch_events_.Take(), &report);
  }
  registry_->GetCounter("analysis.races").Add(report.races_detected);
  registry_->GetCounter("analysis.wa_accesses").Add(report.wa_accesses);
  registry_->GetCounter("analysis.schedule_checks")
      .Add(report.schedule_checks);
  registry_->GetCounter("analysis.schedule_violations")
      .Add(report.violations_detected);
#if GTS_SYNC_CHECK_ENABLED
  {
    // Lock-order findings accrued since the previous harvest (the
    // registry is process-global; per-run attribution is by drain
    // window, same as TakeRunStats above).
    auto drain = analysis::sync::LockRegistry::Global().TakeViolations();
    report.sync_check_ran = true;
    report.lock_acquisitions += drain.acquisitions;
    report.lock_order_violations += drain.violations_detected;
    for (auto& v : drain.violations) {
      if (report.lock_violations.size() <
          options_.analysis.max_reported) {
        report.lock_violations.push_back(std::move(v));
      }
    }
    registry_->GetCounter("analysis.lock_acquisitions")
        .Add(drain.acquisitions);
    registry_->GetCounter("analysis.lock_order_violations")
        .Add(drain.violations_detected);
  }
#endif

  if (options_.keep_timeline) metrics->timeline = std::move(schedule);

  PublishMetrics(*metrics);
  ReleaseBuffers();

  if (options_.analysis.fail_on_violation && report.violations_detected > 0) {
    return Status::Internal("schedule validation failed:\n" +
                            report.ToString());
  }
  if (options_.analysis.fail_on_race && report.races_detected > 0) {
    return Status::Internal("logical races detected:\n" + report.ToString());
  }
  if (options_.analysis.fail_on_lock_violation &&
      report.lock_order_violations > 0) {
    return Status::Internal("lock-order violations detected:\n" +
                            report.ToString());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// JobScheduler batch epochs: N concurrent jobs share the streaming
// machinery (page cache, io queues, dispatch, copy engines) while each
// owns a private WA partition, frontier, and metrics scope. Single-job
// batches never reach this code -- the scheduler routes them through
// RunDirect/RunPassDirect, which keeps the legacy schedules byte-exact.
// The batch path intentionally does not drive the GTS_RACE_CHECK
// happens-before detector (its lane model is per-run); the always-on
// schedule validator covers batch epochs, including the J1 job-isolation
// rule over TimelineOp::job tags.
// ---------------------------------------------------------------------------

Status GtsEngine::AdmitJobSlices(JobExec* job, int slot) {
  const uint32_t wa_b = job->kernel->wa_bytes_per_vertex();
  const bool tkernel =
      job->kernel->access_pattern() == AccessPattern::kTraversal;
  job->gpus.clear();
  job->gpus.resize(static_cast<size_t>(machine_.num_gpus));
  for (int g = 0; g < machine_.num_gpus; ++g) {
    JobGpuSlice& slice = job->gpus[static_cast<size_t>(g)];
    WaRange(g, tkernel, &slice.wa_begin, &slice.wa_end);
    const uint64_t wa_bytes =
        static_cast<uint64_t>(slice.wa_end - slice.wa_begin) * wa_b;
    auto buf = gpus_[g]->device->Allocate(
        wa_bytes, "WABuf[job" + std::to_string(slot) + "]");
    if (!buf.ok()) {
      // Admission-control signal: release the partial allocation so the
      // next candidate (or the next epoch) sees the memory back.
      job->gpus.clear();
      return buf.status();
    }
    slice.wa_buf = std::move(buf).value();
    if (tkernel) {
      slice.local_next = std::make_unique<PidSet>(graph_->num_pages());
      if (CountFrontier()) slice.local_next->EnableCounting();
    }
    slice.stream_work.assign(static_cast<size_t>(options_.num_streams),
                             WorkStats{});
  }
  return Status::OK();
}

void GtsEngine::ReleaseJobSlices(JobExec* job) { job->gpus.clear(); }

Status GtsEngine::SetupSharedStreamBuffers(uint32_t max_ra_b) {
  const uint64_t page_size = graph_->config().page_size;
  for (int g = 0; g < machine_.num_gpus; ++g) {
    GpuState& gpu = *gpus_[g];
    for (int s = 0; s < options_.num_streams; ++s) {
      GTS_ASSIGN_OR_RETURN(
          gpu::DeviceBuffer sp,
          gpu.device->Allocate(page_size, "SPBuf[" + std::to_string(s) + "]"));
      gpu.sp_buf.push_back(std::move(sp));
      GTS_ASSIGN_OR_RETURN(
          gpu::DeviceBuffer lp,
          gpu.device->Allocate(page_size, "LPBuf[" + std::to_string(s) + "]"));
      gpu.lp_buf.push_back(std::move(lp));
      if (max_ra_b > 0) {
        // Sized for the largest admitted RA record: one shared RABuf set
        // serves every job of the epoch.
        GTS_ASSIGN_OR_RETURN(
            gpu::DeviceBuffer ra,
            gpu.device->Allocate(
                static_cast<uint64_t>(max_slots_per_page_) * max_ra_b,
                "RABuf[" + std::to_string(s) + "]"));
        gpu.ra_buf.push_back(std::move(ra));
      }
    }
    gpu.stream_work.assign(static_cast<size_t>(options_.num_streams),
                           WorkStats{});
    gpu.stream_last_kind.assign(static_cast<size_t>(options_.num_streams), -1);
    gpu.rr = 0;
  }
  return Status::OK();
}

void GtsEngine::SetupBatchCaches() {
  const uint64_t page_size = graph_->config().page_size;
  for (int g = 0; g < machine_.num_gpus; ++g) {
    GpuState& gpu = *gpus_[g];
    const uint64_t avail = gpu.device->available();
    const uint64_t cache_bytes =
        options_.cache_bytes == GtsOptions::kAutoCacheBytes
            ? avail
            : std::min(options_.cache_bytes, avail);
    gpu.cache = std::make_unique<PageCache>(
        gpu.device.get(), cache_bytes, page_size, options_.cache_policy,
        registry_.get(), "cache.gpu" + std::to_string(g));
    gpu.cache->BindPinLog(&pin_events_);
  }
}

void GtsEngine::ReleaseBatchBuffers(const std::vector<JobExec*>& jobs) {
  for (JobExec* job : jobs) ReleaseJobSlices(job);
  ReleaseBuffers();
}

void GtsEngine::UploadWaJob(JobExec* job) {
  const TimeModel& tm = machine_.time_model;
  const uint32_t wa_b = job->kernel->wa_bytes_per_vertex();
  for (int g = 0; g < machine_.num_gpus; ++g) {
    JobGpuSlice& slice = job->gpus[static_cast<size_t>(g)];
    const uint64_t bytes =
        static_cast<uint64_t>(slice.wa_end - slice.wa_begin) * wa_b;
    gpu::TimelineOp op;
    op.kind = gpu::OpKind::kH2DChunk;
    op.stream_key = StreamKey(g, 0);
    op.resource = {gpu::ResourceId::Type::kCopyEngine, g};
    op.duration = static_cast<double>(bytes) / tm.c1;
    op.bytes = bytes;
    op.job = job->job_id;
    RecordOp(op);
    job->kernel->InitDeviceWa(slice.wa_buf.data(), slice.wa_begin,
                              slice.wa_end);
  }
}

void GtsEngine::DownloadWaJob(JobExec* job) {
  const TimeModel& tm = machine_.time_model;
  const uint32_t wa_b = job->kernel->wa_bytes_per_vertex();
  const int n_gpus = machine_.num_gpus;

  // Barrier-ordered like the legacy DownloadWa: the job's final WA state
  // exists only after every in-flight kernel of the pass retired.
  {
    analysis::sync::Lock lock(record_mu_);
    recorder_.AddBarrier(0.0);
  }

  std::vector<gpu::OpIndex> d2h_idx(static_cast<size_t>(n_gpus), gpu::kNoOp);
  if (options_.strategy == Strategy::kPerformance && n_gpus > 1) {
    const uint64_t bytes =
        static_cast<uint64_t>(graph_->num_vertices()) * wa_b;
    for (int g = 1; g < n_gpus; ++g) {
      gpu::TimelineOp p2p;
      p2p.kind = gpu::OpKind::kP2P;
      p2p.resource = {gpu::ResourceId::Type::kCopyEngine, 0};
      p2p.duration = static_cast<double>(bytes) / tm.p2p_bandwidth;
      p2p.bytes = bytes;
      p2p.job = job->job_id;
      RecordOp(p2p);
    }
    gpu::TimelineOp d2h;
    d2h.kind = gpu::OpKind::kD2H;
    d2h.resource = {gpu::ResourceId::Type::kCopyEngine, 0};
    d2h.duration = static_cast<double>(bytes) / tm.c1;
    d2h.bytes = bytes;
    d2h.job = job->job_id;
    const gpu::OpIndex idx = RecordOp(d2h);
    for (int g = 0; g < n_gpus; ++g) d2h_idx[static_cast<size_t>(g)] = idx;
  } else {
    for (int g = 0; g < n_gpus; ++g) {
      JobGpuSlice& slice = job->gpus[static_cast<size_t>(g)];
      const uint64_t bytes =
          static_cast<uint64_t>(slice.wa_end - slice.wa_begin) * wa_b;
      gpu::TimelineOp d2h;
      d2h.kind = gpu::OpKind::kD2H;
      d2h.resource = {gpu::ResourceId::Type::kCopyEngine, g};
      d2h.duration = static_cast<double>(bytes) / tm.c1;
      d2h.bytes = bytes;
      d2h.job = job->job_id;
      d2h_idx[static_cast<size_t>(g)] = RecordOp(d2h);
    }
  }
  for (int g = 0; g < n_gpus; ++g) {
    JobGpuSlice& slice = job->gpus[static_cast<size_t>(g)];
    job->kernel->AbsorbDeviceWa(slice.wa_buf.data(), slice.wa_begin,
                                slice.wa_end);
  }
  if (options_.io.wa_snapshot) {
    // Same snapshot layout as the legacy path (offsets restart at the
    // device page region for every download): jobs completing later in
    // the epoch overwrite earlier snapshots, which is the snapshot -- not
    // journal -- contract.
    const size_t n_dev = store_->num_devices();
    std::vector<uint64_t> cursor(n_dev);
    for (size_t d = 0; d < n_dev; ++d) cursor[d] = store_->DevicePageBytes(d);
    for (int g = 0; g < n_gpus; ++g) {
      JobGpuSlice& slice = job->gpus[static_cast<size_t>(g)];
      const uint64_t bytes =
          static_cast<uint64_t>(slice.wa_end - slice.wa_begin) * wa_b;
      if (bytes == 0) continue;
      const size_t d = static_cast<size_t>(g) % n_dev;
      auto wrote = io_->Write(d, cursor[d], slice.wa_buf.data(), bytes,
                              d2h_idx[static_cast<size_t>(g)]);
      GTS_CHECK_OK(wrote.status());
      cursor[d] += bytes;
    }
  }
}

void GtsEngine::FinishJobInEpoch(JobExec* job) {
  if (job->status.ok()) {
    DownloadWaJob(job);
    if (job->traversal()) {
      job->metrics.levels = job->level;
    } else {
      analysis::sync::Lock lock(record_mu_);
      recorder_.AddBarrier(machine_.time_model.sync_overhead *
                           machine_.num_gpus);
      job->metrics.levels = 1;
    }
    for (const JobGpuSlice& slice : job->gpus) {
      for (const WorkStats& w : slice.stream_work) job->metrics.work += w;
    }
    // Storage/io counters are epoch-cumulative up to this job's
    // completion (the queues are shared; per-job attribution of a merged
    // read would be arbitrary).
    job->metrics.io = store_->stats();
    job->metrics.io_queue = io_->stats();
  }
  job->finished = true;
  ReleaseJobSlices(job);
}

Status GtsEngine::ProcessPagesBatch(
    const std::vector<PageId>& ordered,
    const std::unordered_map<PageId, std::vector<JobExec*>>& demand) {
  if (options_.use_stream_threads && options_.dispatch.work_stealing) {
    return ProcessPagesBatchPull(ordered, demand);
  }
  GTS_PROF_SCOPE("engine.process_pages");
  for (PageId pid : ordered) {
    const PageRoute route = RoutePage(pid);
    const PageKind kind = graph_->kind(pid);
    for (int g = route.first_gpu; g <= route.last_gpu; ++g) {
      GpuState& gpu = *gpus_[g];
      const int s = pipeline_->AssignStream(static_cast<int>(kind),
                                            gpu.stream_last_kind, &gpu.rr);
      GTS_RETURN_IF_ERROR(StreamPageToGpuBatch(pid, g, s, demand.at(pid),
                                               /*pull=*/false,
                                               /*stolen=*/false));
    }
  }
  return Status::OK();
}

Status GtsEngine::ProcessPagesBatchPull(
    const std::vector<PageId>& ordered,
    const std::unordered_map<PageId, std::vector<JobExec*>>& demand) {
  GTS_PROF_SCOPE("engine.process_pages");
  const int n_gpus = machine_.num_gpus;
  const int n_streams = options_.num_streams;

  ReadyQueue queue(n_gpus, n_streams, work_item_seq_);
  queue.BindEventLog(&dispatch_events_);
  queue.BindMetrics(&registry_->GetDistribution("dispatch.queue_wait"),
                    &registry_->GetCounter("dispatch.steals"));
  for (PageId pid : ordered) {
    const PageRoute route = RoutePage(pid);
    const PageKind kind = graph_->kind(pid);
    const bool gpu_bound = route.last_gpu > route.first_gpu;
    for (int g = route.first_gpu; g <= route.last_gpu; ++g) {
      GpuState& gpu = *gpus_[g];
      const int s = pipeline_->AssignStream(static_cast<int>(kind),
                                            gpu.stream_last_kind, &gpu.rr);
      queue.Push(pid, g, s, static_cast<int>(kind), gpu_bound);
    }
  }
  work_item_seq_ = queue.next_id();

  const bool allow_cross =
      options_.strategy == Strategy::kPerformance && n_gpus > 1;
  std::mutex error_mu;
  Status first_error;
  for (int g = 0; g < n_gpus; ++g) {
    for (int s = 0; s < n_streams; ++s) {
      gpus_[g]->streams[s]->Enqueue([this, &demand, &queue, &error_mu,
                                     &first_error, allow_cross, g, s] {
        ClaimContext ctx;
        ctx.gpu = g;
        ctx.stream = s;
        ctx.stream_key = StreamKey(g, s);
        ctx.allow_cross_gpu = allow_cross;
        const uint32_t batch = options_.dispatch.steal_batch;
        std::vector<WorkItem> items;
        WorkItem item;
        bool done = false;
        while (!done) {
          ctx.last_kind = gpus_[g]->stream_last_kind[s];
          if (batch > 1) {
            if (!pipeline_->ClaimWorkBatch(queue, ctx, batch, &items)) break;
          } else {
            if (!pipeline_->ClaimWork(queue, ctx, &item)) break;
            items.assign(1, item);
          }
          for (const WorkItem& claimed : items) {
            Status status = StreamPageToGpuBatch(claimed.pid, g, s,
                                                 demand.at(claimed.pid),
                                                 /*pull=*/true,
                                                 claimed.stolen);
            if (!status.ok()) {
              std::lock_guard<std::mutex> lock(error_mu);
              if (first_error.ok()) first_error = std::move(status);
              done = true;
              break;
            }
          }
        }
      });
    }
  }
  for (auto& gpu : gpus_) {
    for (auto& stream : gpu->streams) stream->Synchronize();
  }
  return first_error;
}

Status GtsEngine::StreamPageToGpuBatch(PageId pid, int g, int s,
                                       const std::vector<JobExec*>& demanders,
                                       bool pull, bool stolen) {
  const TimeModel& tm = machine_.time_model;
  const PageConfig& config = graph_->config();
  const uint64_t page_size = config.page_size;
  const PageKind kind = graph_->kind(pid);
  GpuState& gpu = *gpus_[g];
  const int stream_key = StreamKey(g, s);

  analysis::sync::UniqueLock host_phase(dispatch_mu_,
                                      analysis::sync::UniqueLock::kDefer);
  if (pull) host_phase.lock();

  PageCache::Pin pin =
      gpu.cache != nullptr ? gpu.cache->Lookup(pid) : PageCache::Pin();
  const bool cached = pin.valid();

  std::vector<uint8_t> staging;
  if (!cached) {
    staging.resize(page_size);
    transfer::StageRequest sreq;
    sreq.pid = pid;
    sreq.gpu = g;
    sreq.stream_key = stream_key;
    sreq.stolen = stolen;
    // A transfer serving one job is that job's trace lane; a transfer
    // serving several is shared infrastructure (-1), so the J1 rule
    // never sees a cross-job edge from the co-served kernels.
    sreq.job = demanders.size() == 1 ? demanders[0]->job_id : -1;
    GTS_ASSIGN_OR_RETURN(transfer::StagedPage staged, transfer_->Stage(sreq));
    // First-demander attribution: across the epoch, sum(pages_streamed)
    // over jobs equals the distinct H2D page transfers.
    ++demanders[0]->metrics.pages_streamed;
    demanders[0]->metrics.transfer_bytes += staged.bytes;
    if (staged.direct) {
      ++demanders[0]->metrics.direct_pages;
      demanders[0]->metrics.direct_bytes += staged.bytes;
    }
    std::memcpy(staging.data(), staged.data, page_size);
    // Streaming ingestion: overlay once per staging; every co-served
    // job reads the same patched epoch-consistent copy.
    if (ingest_ != nullptr) (void)ingest_->Overlay(pid, staging.data());
  }
  if (demanders.size() > 1) {
    obs::Counter& shared = registry_->GetCounter("cache.shared_page_hits");
    for (size_t i = 1; i < demanders.size(); ++i) {
      ++demanders[i]->metrics.shared_page_hits;
      shared.Add();
    }
  }

  // Per-job kernel launches against the one staged/cached copy of the
  // page. RA subvectors stay per-job (each kernel's host RA array), and
  // -- unlike the legacy cache, which only exists for RA-free kernels --
  // a cache hit here still streams RA for jobs that carry it.
  struct JobLaunch {
    JobExec* job = nullptr;
    gpu::OpIndex kidx = gpu::kNoOp;
    const uint8_t* ra_src = nullptr;
    uint64_t ra_bytes = 0;
    VertexId ra_start_vid = 0;
    uint32_t cur_level = 0;
  };
  std::vector<JobLaunch> launches;
  launches.reserve(demanders.size());
  for (JobExec* job : demanders) {
    JobLaunch jl;
    jl.job = job;
    jl.cur_level = job->traversal() ? static_cast<uint32_t>(job->level)
                                    : (job->is_pass ? job->pass_level : 0);
    const uint32_t ra_b = job->kernel->ra_bytes_per_vertex();
    const uint8_t* host_ra = job->kernel->host_ra();
    if (ra_b > 0 && host_ra != nullptr) {
      const RvtEntry& rvt_entry = graph_->rvt().entry(pid);
      jl.ra_start_vid = rvt_entry.start_vid;
      const uint32_t covered =
          kind == PageKind::kSmall ? graph_->view(pid).num_slots() : 1;
      jl.ra_bytes = static_cast<uint64_t>(covered) * ra_b;
      jl.ra_src = host_ra + static_cast<uint64_t>(jl.ra_start_vid) * ra_b;

      gpu::TimelineOp ra_op;
      ra_op.kind = gpu::OpKind::kH2DStream;
      ra_op.stream_key = stream_key;
      ra_op.resource = {gpu::ResourceId::Type::kCopyEngine, g};
      ra_op.duration = static_cast<double>(jl.ra_bytes) / tm.c2;
      ra_op.bytes = jl.ra_bytes;
      ra_op.page = pid;
      ra_op.job = job->job_id;
      RecordOp(ra_op);
    }

    gpu::TimelineOp kop;
    kop.kind = gpu::OpKind::kKernel;
    kop.stream_key = stream_key;
    kop.resource = {gpu::ResourceId::Type::kKernelPool, g};
    kop.duration = 0.0;
    if (gpu.stream_last_kind[s] >= 0 &&
        gpu.stream_last_kind[s] != static_cast<int>(kind)) {
      kop.duration = tm.kernel_switch_overhead;
    }
    gpu.stream_last_kind[s] = static_cast<int>(kind);
    kop.page = pid;
    kop.stolen = stolen;
    kop.job = job->job_id;
    jl.kidx = RecordOp(kop);
    if (kind == PageKind::kSmall) {
      ++job->metrics.sp_kernel_calls;
    } else {
      ++job->metrics.lp_kernel_calls;
    }
    launches.push_back(jl);
  }

  const bool insert_into_cache = gpu.cache != nullptr && !cached;
  const uint64_t page_version =
      ingest_ != nullptr ? ingest_->PageVersion(pid) : 0;
  GpuState* gpu_ptr = &gpu;
  const double launch_overhead = tm.kernel_launch_overhead;
  const double sec_per_cycle = tm.warp_cycle_seconds;
  auto execute = [this, gpu_ptr, pin = std::move(pin),
                  staging = std::move(staging),
                  launches = std::move(launches), kind, g, s,
                  sec_per_cycle, insert_into_cache, pid, config,
                  launch_overhead, page_version]() {
    GpuState& st = *gpu_ptr;
    const uint8_t* page_bytes = nullptr;
    if (pin.valid()) {
      page_bytes = pin.data();
    } else {
      uint8_t* dst = kind == PageKind::kSmall ? st.sp_buf[s].data()
                                              : st.lp_buf[s].data();
      std::memcpy(dst, staging.data(), staging.size());
      page_bytes = dst;
    }
    PageView view(page_bytes, config);
    for (const JobLaunch& jl : launches) {
      JobGpuSlice& slice = jl.job->gpus[static_cast<size_t>(g)];
      if (jl.ra_src != nullptr) {
        std::memcpy(st.ra_buf[s].data(), jl.ra_src, jl.ra_bytes);
      }
      KernelContext ctx;
      ctx.rvt = &graph_->rvt();
      ctx.wa = slice.wa_buf.data();
      ctx.wa_begin = slice.wa_begin;
      ctx.wa_end = slice.wa_end;
      ctx.ra = jl.ra_src != nullptr ? st.ra_buf[s].data() : nullptr;
      ctx.ra_start_vid = jl.ra_start_vid;
      ctx.cur_level = jl.cur_level;
      ctx.next_pid_set = slice.local_next.get();
      if (slice.local_next != nullptr && slice.local_next->counting()) {
        ctx.out_degrees = out_degrees_.data();
      }
      ctx.micro = options_.micro;
      const WorkStats work = kind == PageKind::kSmall
                                 ? jl.job->kernel->RunSp(view, ctx)
                                 : jl.job->kernel->RunLp(view, ctx);
      slice.stream_work[static_cast<size_t>(s)] += work;
      PatchKernelDuration(
          jl.kidx,
          launch_overhead +
              static_cast<double>(work.warp_cycles) * sec_per_cycle +
              static_cast<double>(work.mem_transactions) *
                  jl.job->kernel->seconds_per_mem_transaction(
                      machine_.time_model));
    }
    if (insert_into_cache) {
      (void)st.cache->Insert(pid, page_bytes, page_version);
    }
  };

  if (pull) {
    host_phase.unlock();
    execute();
  } else if (options_.use_stream_threads) {
    gpu.streams[s]->Enqueue(std::move(execute));
  } else {
    execute();
  }
  return Status::OK();
}

Status GtsEngine::RunJobBatch(const std::vector<JobExec*>& jobs) {
  GTS_PROF_SCOPE("engine.run_job_batch");
  const TimeModel& tm = machine_.time_model;

  // Entry validation (mirrors the legacy Run/RunPass checks) + reset.
  std::vector<JobExec*> ready;
  for (JobExec* job : jobs) {
    job->admitted = false;
    job->participated = false;
    job->finished = false;
    job->status = Status::OK();
    job->metrics = RunMetrics{};
    job->level = 0;
    job->prev_updates = 0;
    job->job_id = -1;
    job->frontier.reset();
    job->gpus.clear();
    if (job->cancel.load(std::memory_order_relaxed)) {
      job->status = Status::Cancelled("job cancelled at level boundary");
      job->finished = true;
      continue;
    }
    if (job->traversal() &&
        (job->options.source == kInvalidVertexId ||
         job->options.source >= graph_->num_vertices())) {
      job->status =
          Status::InvalidArgument("traversal kernel needs a source vertex");
      job->finished = true;
      continue;
    }
    if (job->is_pass) {
      bool bad = false;
      for (PageId pid : job->pages) bad |= pid >= graph_->num_pages();
      if (bad) {
        job->status = Status::InvalidArgument("page id out of range");
        job->finished = true;
        continue;
      }
    }
    ready.push_back(job);
  }
  if (ready.empty()) return Status::OK();

  bool any_traversal = false;
  for (JobExec* job : ready) {
    any_traversal |=
        job->kernel->access_pattern() == AccessPattern::kTraversal;
  }
  if (any_traversal && CountFrontier()) BuildDegreeTable();

  // WA admission control, in batch (priority) order: a job whose
  // partition does not fit next to the already-admitted ones is deferred
  // to the next epoch; a job that cannot fit even alone fails with the
  // allocation error (otherwise deferral would loop forever).
  std::vector<JobExec*> admitted;
  for (JobExec* job : ready) {
    const Status st = AdmitJobSlices(job, static_cast<int>(admitted.size()));
    if (st.ok()) {
      job->admitted = true;
      admitted.push_back(job);
    } else if (admitted.empty()) {
      job->status = st;
      job->finished = true;
    }
    // else: deferred (stays !admitted, !finished; the scheduler requeues).
  }
  if (admitted.empty()) return Status::OK();

  // Shared stream buffers; on oversubscription defer admitted jobs from
  // the back until the shared set fits too.
  for (;;) {
    uint32_t max_ra_b = 0;
    for (JobExec* job : admitted) {
      max_ra_b = std::max(max_ra_b, job->kernel->ra_bytes_per_vertex());
    }
    const Status st = SetupSharedStreamBuffers(max_ra_b);
    if (st.ok()) break;
    for (auto& gpu : gpus_) {
      gpu->sp_buf.clear();
      gpu->lp_buf.clear();
      gpu->ra_buf.clear();
    }
    JobExec* last = admitted.back();
    last->admitted = false;
    ReleaseJobSlices(last);
    if (admitted.size() == 1) {
      last->status = st;
      last->finished = true;
      return Status::OK();
    }
    admitted.pop_back();
  }

  // Shared page cache: exists when any admitted job qualifies (traversal
  // kernel, cache enabled, RA-free -- the legacy rule); cached topology
  // bytes are job-agnostic and serve every demander.
  bool any_cache = false;
  for (JobExec* job : admitted) {
    any_cache |=
        job->kernel->access_pattern() == AccessPattern::kTraversal &&
        options_.enable_cache && job->kernel->ra_bytes_per_vertex() == 0;
  }
  if (any_cache) SetupBatchCaches();

  // Epoch-start clears (one epoch = one schedule, like one legacy run).
  {
    analysis::sync::Lock lock(record_mu_);
    recorder_.Clear();
  }
  store_->ResetStats();
  io_->ResetStats();
  pin_events_.Clear();
  io_events_.Clear();
  dispatch_events_.Clear();
  work_item_seq_ = 0;
  registry_->GetCounter("cache.shared_page_hits");  // stable snapshot keys

  // Safe point: the epoch opens on a freshly published graph version
  // (priced into this epoch's schedule). A job that pins its graph
  // version pins this epoch for every concurrent job -- they share the
  // staged pages, so per-job versions inside one pass cannot diverge.
  PublishIngest();
  if (any_traversal && CountFrontier()) BuildDegreeTable();
  bool pin_version = false;
  for (JobExec* job : admitted) {
    pin_version |= job->options.pin_graph_version;
  }

  int32_t next_job_id = 0;
  for (JobExec* job : admitted) {
    job->job_id = next_job_id++;
    if (job->traversal()) {
      job->frontier = std::make_unique<PidSet>(graph_->num_pages());
      if (CountFrontier()) job->frontier->EnableCounting();
      job->frontier->Set(
          graph_->PageOfVertex(job->options.source),
          out_degrees_.empty() ? 1
                               : out_degrees_[job->options.source]);
    }
    UploadWaJob(job);
  }

  // The merged pass loop: each iteration retires finished jobs at the
  // boundary, then streams the union of the survivors' page demand.
  std::vector<JobExec*> running = admitted;
  bool first_pass = true;
  while (!running.empty()) {
    // Mid-epoch safe point (skipped when any job pinned the epoch's
    // graph version; the first pass follows the epoch-start publish
    // directly).
    if (!first_pass && !pin_version) {
      PublishIngest();
      if (any_traversal && CountFrontier()) BuildDegreeTable();
    }
    first_pass = false;
    std::vector<JobExec*> survivors;
    for (JobExec* job : running) {
      if (job->cancel.load(std::memory_order_relaxed)) {
        job->status = Status::Cancelled("job cancelled at level boundary");
        FinishJobInEpoch(job);
        continue;
      }
      if (job->options.max_streamed_bytes > 0 &&
          job->metrics.transfer_bytes >= job->options.max_streamed_bytes) {
        registry_->GetCounter("jobs.quota_deferrals").Add();
        job->status = Status::ResourceExhausted(
            "job hit max_streamed_bytes: " +
            std::to_string(job->metrics.transfer_bytes) +
            " B streamed, quota " +
            std::to_string(job->options.max_streamed_bytes) + " B");
        FinishJobInEpoch(job);
        continue;
      }
      if (job->traversal()) {
        const int job_max = job->options.max_levels_override >= 0
                                ? job->options.max_levels_override
                                : options_.max_levels;
        if (job->frontier->Empty() || job->level >= job_max) {
          FinishJobInEpoch(job);
          continue;
        }
      } else if (job->participated) {
        // Full scans and explicit passes stream exactly one pass.
        FinishJobInEpoch(job);
        continue;
      }
      survivors.push_back(job);
    }
    running = std::move(survivors);
    if (running.empty()) break;

    // Per-job page lists for this pass.
    struct JobPages {
      JobExec* job = nullptr;
      std::vector<PageId> sps;
      std::vector<PageId> lps;
    };
    std::vector<JobPages> plan;
    plan.reserve(running.size());
    bool pass_has_traversal = false;
    for (JobExec* job : running) {
      JobPages jp;
      jp.job = job;
      if (job->traversal()) {
        pass_has_traversal = true;
        uint64_t skipped = 0;
        const std::vector<PageId> front_pages = job->frontier->ToVector();
        const uint32_t min_edges =
            EffectiveMinActiveEdges(*job->frontier, front_pages);
        for (PageId pid : front_pages) {
          if (min_edges > 0 && job->frontier->counting() &&
              job->frontier->CountOf(pid) < min_edges) {
            ++skipped;
            continue;
          }
          if (graph_->kind(pid) == PageKind::kSmall) {
            jp.sps.push_back(pid);
          } else {
            const uint32_t more = graph_->rvt().entry(pid).lp_more;
            for (uint32_t k = 0; k <= more; ++k) jp.lps.push_back(pid + k);
          }
        }
        if (skipped > 0) {
          job->metrics.pages_skipped += skipped;
          registry_->GetCounter("dispatch.skipped_pages").Add(skipped);
        }
        if (job->kernel->collect_level_pages()) {
          std::vector<PageId> combined = jp.sps;
          combined.insert(combined.end(), jp.lps.begin(), jp.lps.end());
          job->metrics.level_pages.push_back(std::move(combined));
        }
        for (auto& slice : job->gpus) slice.local_next->Clear();
      } else if (job->is_pass) {
        for (PageId pid : job->pages) {
          (graph_->kind(pid) == PageKind::kSmall ? jp.sps : jp.lps)
              .push_back(pid);
        }
      } else {
        jp.sps = graph_->small_page_ids();
        jp.lps = graph_->large_page_ids();
      }
      job->participated = true;
      plan.push_back(std::move(jp));
    }

    // Demand union + weighted-round-robin merge (JobOptions::priority =
    // pages taken per turn): each distinct page enters the merged order
    // once, at the turn of the first job that claims it, and carries the
    // full list of jobs demanding it.
    std::unordered_map<PageId, std::vector<JobExec*>> demand;
    for (const JobPages& jp : plan) {
      for (PageId pid : jp.sps) demand[pid].push_back(jp.job);
      for (PageId pid : jp.lps) demand[pid].push_back(jp.job);
    }
    auto merge_wrr = [&plan](bool large) {
      std::vector<PageId> merged;
      std::unordered_set<PageId> seen;
      std::vector<size_t> cursor(plan.size(), 0);
      for (;;) {
        bool advanced = false;
        for (size_t j = 0; j < plan.size(); ++j) {
          const std::vector<PageId>& list =
              large ? plan[j].lps : plan[j].sps;
          int take = std::max(1, plan[j].job->options.priority);
          while (take-- > 0 && cursor[j] < list.size()) {
            const PageId pid = list[cursor[j]++];
            if (seen.insert(pid).second) merged.push_back(pid);
            advanced = true;
          }
        }
        if (!advanced) break;
      }
      return merged;
    };
    std::vector<PageId> merged_sps = merge_wrr(/*large=*/false);
    std::vector<PageId> merged_lps = merge_wrr(/*large=*/true);

    // Merged counted frontier: the ordering/admission context for
    // frontier-aware dispatch policies sees the union of every running
    // traversal job's activations.
    std::unique_ptr<PidSet> merged_frontier;
    if (pass_has_traversal) {
      merged_frontier = std::make_unique<PidSet>(graph_->num_pages());
      if (CountFrontier()) merged_frontier->EnableCounting();
      for (JobExec* job : running) {
        if (job->traversal()) merged_frontier->Union(*job->frontier);
      }
    }

    const std::vector<PageId> ordered =
        PlanPass(std::move(merged_sps), std::move(merged_lps),
                 merged_frontier.get());
    Status pass_status = ProcessPagesBatch(ordered, demand);
    SynchronizeStreams();
    if (!pass_status.ok()) {
      for (JobExec* job : running) {
        job->status = pass_status;
        job->finished = true;
        ReleaseJobSlices(job);
      }
      break;
    }

    // Per-job level sync (admission order), then one host merge +
    // barrier for the pass -- the batch analogue of Algorithm 1's
    // per-level synchronization.
    for (JobExec* job : running) {
      if (!job->traversal()) continue;
      job->frontier->Clear();
      for (int g = 0; g < machine_.num_gpus; ++g) {
        JobGpuSlice& slice = job->gpus[static_cast<size_t>(g)];
        gpu::TimelineOp d2h;
        d2h.kind = gpu::OpKind::kD2H;
        d2h.resource = {gpu::ResourceId::Type::kCopyEngine, g};
        d2h.duration =
            static_cast<double>(slice.local_next->ByteSize()) / tm.c1;
        d2h.bytes = slice.local_next->ByteSize();
        d2h.job = job->job_id;
        RecordOp(d2h);
        job->frontier->Union(*slice.local_next);
      }
      if (machine_.num_gpus > 1) {
        uint64_t total_updates = 0;
        for (const auto& slice : job->gpus) {
          for (const WorkStats& w : slice.stream_work) {
            total_updates += w.wa_updates;
          }
        }
        const uint64_t level_updates = total_updates - job->prev_updates;
        job->prev_updates = total_updates;
        const uint64_t delta_bytes =
            level_updates * (job->kernel->wa_bytes_per_vertex() + 8);
        for (int g = 0; g < machine_.num_gpus; ++g) {
          gpu::TimelineOp d2h;
          d2h.kind = gpu::OpKind::kD2H;
          d2h.resource = {gpu::ResourceId::Type::kCopyEngine, g};
          d2h.duration =
              static_cast<double>(delta_bytes / machine_.num_gpus) / tm.c1;
          d2h.bytes = delta_bytes / machine_.num_gpus;
          d2h.job = job->job_id;
          RecordOp(d2h);
          gpu::TimelineOp h2d;
          h2d.kind = gpu::OpKind::kH2DChunk;
          h2d.resource = {gpu::ResourceId::Type::kCopyEngine, g};
          h2d.duration = static_cast<double>(delta_bytes) / tm.c1;
          h2d.bytes = delta_bytes;
          h2d.job = job->job_id;
          RecordOp(h2d);
        }
        for (auto& slice : job->gpus) {
          job->kernel->AbsorbDeviceWa(slice.wa_buf.data(), slice.wa_begin,
                                      slice.wa_end);
        }
        for (auto& slice : job->gpus) {
          job->kernel->InitDeviceWa(slice.wa_buf.data(), slice.wa_begin,
                                    slice.wa_end);
        }
      }
    }
    if (pass_has_traversal) {
      gpu::TimelineOp merge;
      merge.kind = gpu::OpKind::kHostCompute;
      merge.duration = tm.host_merge_overhead;
      RecordOp(merge);
      {
        analysis::sync::Lock lock(record_mu_);
        recorder_.AddBarrier(tm.sync_overhead);
      }
      for (JobExec* job : running) {
        if (job->traversal()) ++job->level;
      }
    }
  }

  FinalizeBatchEpoch(jobs);
  return Status::OK();
}

void GtsEngine::FinalizeBatchEpoch(const std::vector<JobExec*>& jobs) {
  GTS_PROF_SCOPE("engine.finalize_run");
  std::vector<gpu::TimelineOp> ops;
  {
    analysis::sync::Lock lock(record_mu_);
    ops = recorder_.TakeOps();
  }
  gpu::ScheduleResult schedule =
      gpu::ScheduleSimulator(machine_.time_model).Run(std::move(ops));

  analysis::RaceReport epoch_report;
  if (options_.analysis.validate_schedule) {
    analysis::ScheduleValidator validator(
        analysis::ValidatorOptions{1e-12, options_.analysis.max_reported});
    validator.Check(schedule, &epoch_report);
    validator.CheckPinEvents(pin_events_.Take(), &epoch_report);
    validator.CheckIoEvents(io_events_.Take(), &epoch_report);
    validator.CheckDispatchEvents(dispatch_events_.Take(), &epoch_report);
    validator.CheckJobIsolation(schedule, &epoch_report);
  }
  registry_->GetCounter("analysis.races").Add(epoch_report.races_detected);
  registry_->GetCounter("analysis.wa_accesses").Add(epoch_report.wa_accesses);
  registry_->GetCounter("analysis.schedule_checks")
      .Add(epoch_report.schedule_checks);
  registry_->GetCounter("analysis.schedule_violations")
      .Add(epoch_report.violations_detected);

  // Ingest stats are epoch-cumulative like the shared io counters:
  // per-job attribution of a merged publish would be arbitrary, so
  // every finished job carries the epoch's harvest.
  ingest::IngestStats epoch_ingest;
  if (ingest_ != nullptr) epoch_ingest = ingest_->TakeRunStats();

  for (JobExec* job : jobs) {
    if (!job->admitted || !job->finished || !job->status.ok()) continue;
    // Every job of the epoch shares its schedule: sim_seconds is the
    // epoch makespan (a serving-latency view -- the job was done when
    // the batch was), and the busy breakdown is epoch-wide.
    job->metrics.sim_seconds = schedule.makespan;
    job->metrics.transfer_busy =
        schedule.BusySeconds(gpu::ResourceId::Type::kCopyEngine);
    job->metrics.kernel_busy =
        schedule.BusySeconds(gpu::ResourceId::Type::kKernelPool);
    job->metrics.storage_busy =
        schedule.BusySeconds(gpu::ResourceId::Type::kStorageDevice);
    job->metrics.ingest_updates_applied = epoch_ingest.updates_applied;
    job->metrics.ingest_deltas_flushed = epoch_ingest.deltas_flushed;
    job->metrics.ingest_compactions = epoch_ingest.compactions;
    job->metrics.ingest_overlay_hits = epoch_ingest.overlay_hits;
    job->metrics.analysis = epoch_report;
    if (options_.keep_timeline) job->metrics.timeline = schedule;
    PublishMetrics(job->metrics);
    if (options_.analysis.fail_on_violation &&
        epoch_report.violations_detected > 0) {
      job->status = Status::Internal("schedule validation failed:\n" +
                                     epoch_report.ToString());
    }
  }
  ReleaseBatchBuffers(jobs);
}

void GtsEngine::PublishMetrics(const RunMetrics& metrics) {
  // Engine-level aggregates only: cache and storage counters are bumped
  // at their source (PageCache / PageStore / StorageDevice handles), so
  // publishing them again here would double-count.
  registry_->GetCounter("engine.runs").Add();
  registry_->GetCounter("engine.levels").Add(
      static_cast<uint64_t>(metrics.levels));
  registry_->GetCounter("engine.pages_streamed").Add(metrics.pages_streamed);
  registry_->GetCounter("engine.cpu_pages").Add(metrics.cpu_pages);
  registry_->GetCounter("engine.sp_kernel_calls").Add(metrics.sp_kernel_calls);
  registry_->GetCounter("engine.lp_kernel_calls").Add(metrics.lp_kernel_calls);
  registry_->GetGauge("engine.last_transfer_busy_seconds")
      .Set(metrics.transfer_busy);
  registry_->GetGauge("engine.last_kernel_busy_seconds")
      .Set(metrics.kernel_busy);
  registry_->GetGauge("engine.last_storage_busy_seconds")
      .Set(metrics.storage_busy);
  registry_->GetDistribution("engine.sim_seconds").Record(metrics.sim_seconds);
}

}  // namespace gts
