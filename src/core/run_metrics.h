// Per-run counters of one GtsEngine::Run / RunPass.
//
// RunMetrics is the thin per-run compatibility view over the engine's
// observability layer: the same numbers are published cumulatively into
// the engine's obs::MetricsRegistry (see core/run_report.h for the
// registry snapshot carried next to these counters).
#ifndef GTS_CORE_RUN_METRICS_H_
#define GTS_CORE_RUN_METRICS_H_

#include <cstdint>
#include <vector>

#include "analysis/race_report.h"
#include "core/kernel.h"
#include "gpu/schedule.h"
#include "graph/types.h"
#include "io/io_engine.h"
#include "storage/page_store.h"

namespace gts {

/// Result of one Run().
struct RunMetrics {
  SimTime sim_seconds = 0.0;  ///< simulated elapsed time of the run
  int levels = 0;             ///< traversal levels (1 for full scans)
  uint64_t pages_streamed = 0;  ///< H2D page transfers performed
  /// PCI-E bytes moved by topology transfers (page-stream + direct; RA
  /// attribute traffic excluded).
  uint64_t transfer_bytes = 0;
  /// Of pages_streamed, pages moved as fine-grained direct fetches
  /// (transfer.mode = direct/auto) and their byte share.
  uint64_t direct_pages = 0;
  uint64_t direct_bytes = 0;
  uint64_t cpu_pages = 0;       ///< pages co-processed on the host CPUs
  uint64_t sp_kernel_calls = 0;
  uint64_t lp_kernel_calls = 0;
  uint64_t cache_lookups = 0;
  uint64_t cache_hits = 0;
  /// Cache inserts rejected because every evictable page was pinned by an
  /// in-flight kernel (the page stayed on the streaming SPBuf/LPBuf path).
  uint64_t cache_backpressure = 0;
  /// JobScheduler batch epochs only: pages this job consumed that another
  /// concurrent job had already streamed (or cached) in the same pass.
  /// pages_streamed counts only first-demander transfers, so across a
  /// batch sum(pages_streamed) equals the distinct H2D page transfers.
  uint64_t shared_page_hits = 0;
  WorkStats work;
  PageStoreStats io;          ///< storage-level counters for this run
  io::IoStats io_queue;       ///< io-engine (queue/scheduler) counters
  /// Frontier pages skipped by the dispatch.min_active_edges admission
  /// threshold (they held fewer active edges than the cut).
  uint64_t pages_skipped = 0;

  // Streaming-ingestion activity attributed to this run (gts::ingest;
  // zero unless GtsOptions::ingest.enabled). Harvested as the delta
  // since the previous run's harvest, so background-compactor work that
  // landed between runs counts toward the next run. In a JobScheduler
  // batch these are epoch-cumulative, like the shared io counters.
  uint64_t ingest_updates_applied = 0;  ///< updates resolved into chains
  uint64_t ingest_deltas_flushed = 0;   ///< delta records persisted
  uint64_t ingest_compactions = 0;      ///< page rebuilds installed
  uint64_t ingest_overlay_hits = 0;     ///< staged pages patched

  /// Per-lane work of the host-CPU co-processing pool; empty unless the
  /// run used cpu_assist_fraction > 0. Deterministic: two identical
  /// hybrid runs produce identical per-lane stats (the lane cursor resets
  /// every run).
  std::vector<WorkStats> cpu_lane_work;

  /// For traversal runs with GtsKernel::collect_level_pages(): the page ids
  /// processed at each level (drives backward passes, e.g. betweenness).
  std::vector<std::vector<PageId>> level_pages;

  // Resource-busy breakdown from the schedule (for Table 1 style ratios).
  SimTime transfer_busy = 0.0;
  SimTime kernel_busy = 0.0;
  SimTime storage_busy = 0.0;

  /// Full op timeline; populated only with GtsOptions::keep_timeline.
  gpu::ScheduleResult timeline;

  /// gts::analysis findings for the run: schedule-invariant violations
  /// (always-on validator) and, under -DGTS_RACE_CHECK=ON, logical data
  /// races over the simulated schedule. Empty/clean by default.
  analysis::RaceReport analysis;

  /// Folds `increment` into this total. The single accumulation path for
  /// every multi-pass driver (PageRank iterations, radius hops, k-core
  /// rounds, BC's backward sweep):
  ///   - every additive counter (times, pages, kernel calls, cache and
  ///     storage counters -- including cache_backpressure -- and work)
  ///     is summed; `levels` sums too;
  ///   - `level_pages` appends, so a single accumulated run keeps its
  ///     frontier history;
  ///   - `timeline` keeps the increment's ops when it has any (the
  ///     per-run artifact of the *latest* pass; per-pass timelines live
  ///     in the individual RunMetrics).
  void Accumulate(const RunMetrics& increment);

  double cache_hit_rate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
};

}  // namespace gts

#endif  // GTS_CORE_RUN_METRICS_H_
