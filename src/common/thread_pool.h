// A small fixed-size thread pool used by the CPU baselines and by tests.
#ifndef GTS_COMMON_THREAD_POOL_H_
#define GTS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gts {

/// Fixed-size worker pool with a FIFO task queue.
///
/// Tasks are `std::function<void()>`. `Wait()` blocks until the queue drains
/// and all workers are idle; the pool can be reused afterwards.
///
/// Thread-safety: Submit, Wait, and ParallelFor may all be called
/// concurrently from multiple threads. ParallelFor tracks completion per
/// call, so concurrent callers never observe each other's completion; Wait
/// is pool-wide by design (it drains *everything* queued so far). Calling
/// ParallelFor or Wait from inside a pool task deadlocks a fully busy pool
/// and is unsupported.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when tasks arrive / shutdown
  std::condition_variable idle_cv_;   // signalled when a task completes
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace gts

#endif  // GTS_COMMON_THREAD_POOL_H_
