#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace gts {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kOutOfDeviceMemory:
      return "OutOfDeviceMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return rep_ ? rep_->message : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {
void AbortWithMessage(const std::string& msg) {
  std::fprintf(stderr, "GTS fatal: %s\n", msg.c_str());
  std::abort();
}
}  // namespace internal

}  // namespace gts
