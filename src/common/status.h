// Status / Result error handling for GTS, following the Arrow/RocksDB idiom:
// recoverable failures are returned as values, never thrown.
#ifndef GTS_COMMON_STATUS_H_
#define GTS_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace gts {

/// Machine-readable category of a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfMemory = 2,        // host or simulated-device memory exhausted
  kOutOfDeviceMemory = 3,  // the paper's "O.O.M." condition on a GPU
  kNotFound = 4,
  kIOError = 5,
  kCorruption = 6,
  kUnimplemented = 7,
  kFailedPrecondition = 8,
  kCapacityExceeded = 9,  // format limits, e.g. 2-byte page id overflow
  kInternal = 10,
  kResourceExhausted = 11,  // bounded queue/slot pool full (backpressure)
  kCancelled = 12,          // job cancelled before completion (JobScheduler)
};

/// Returns the canonical name of a StatusCode ("OK", "OutOfMemory", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, movable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// human-readable message. Functions that can fail return `Status` (or
/// `Result<T>` when they also produce a value).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status OutOfDeviceMemory(std::string msg) {
    return Status(StatusCode::kOutOfDeviceMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Error message; empty for OK.
  const std::string& message() const;

  bool IsOutOfDeviceMemory() const {
    return code() == StatusCode::kOutOfDeviceMemory;
  }
  bool IsCapacityExceeded() const {
    return code() == StatusCode::kCapacityExceeded;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<Rep> rep_;  // nullptr <=> OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value of type T, or a Status describing why it could not be produced.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or an error Status mirrors
  /// arrow::Result and keeps call sites terse.
  Result(T value) : value_(std::move(value)) {}       // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(runtime/explicit)
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Requires ok().
  T& value() & { return std::get<T>(value_); }
  const T& value() const& { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or aborts with the error (use only after ok()).
  T ValueOrDie() && {
    if (!ok()) AbortWithStatus(status());
    return std::get<T>(std::move(value_));
  }

 private:
  [[noreturn]] static void AbortWithStatus(const Status& status);

  std::variant<T, Status> value_;
};

namespace internal {
[[noreturn]] void AbortWithMessage(const std::string& msg);
}  // namespace internal

template <typename T>
void Result<T>::AbortWithStatus(const Status& status) {
  internal::AbortWithMessage(status.ToString());
}

}  // namespace gts

/// Propagates an error Status from an expression returning Status.
#define GTS_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::gts::Status _gts_status = (expr);           \
    if (!_gts_status.ok()) return _gts_status;    \
  } while (false)

#define GTS_CONCAT_IMPL(a, b) a##b
#define GTS_CONCAT(a, b) GTS_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; assigns the value or returns the error.
#define GTS_ASSIGN_OR_RETURN(lhs, expr)                              \
  GTS_ASSIGN_OR_RETURN_IMPL(GTS_CONCAT(_gts_result_, __LINE__), lhs, \
                            expr)
#define GTS_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                              \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).value();

#endif  // GTS_COMMON_STATUS_H_
