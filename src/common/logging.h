// Minimal leveled logging and check macros (glog-flavoured, self-contained).
#ifndef GTS_COMMON_LOGGING_H_
#define GTS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace gts {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a partially built log statement when the level is filtered out.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace gts

#define GTS_LOG_INTERNAL(level)                                      \
  ::gts::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define GTS_LOG(severity)                                            \
  (::gts::LogLevel::k##severity < ::gts::GetLogLevel())              \
      ? (void)0                                                      \
      : ::gts::internal::LogVoidify() &                              \
            GTS_LOG_INTERNAL(::gts::LogLevel::k##severity)

/// Aborts the process with a message when `condition` is false. Used for
/// programming errors (invariant violations), never for recoverable input
/// errors -- those return Status.
#define GTS_CHECK(condition)                                          \
  (condition) ? (void)0                                               \
              : ::gts::internal::LogVoidify() &                       \
                    GTS_LOG_INTERNAL(::gts::LogLevel::kFatal)         \
                        << "Check failed: " #condition " "

#define GTS_CHECK_OK(expr)                                            \
  do {                                                                \
    const ::gts::Status _gts_check_status = (expr);                   \
    GTS_CHECK(_gts_check_status.ok()) << _gts_check_status.ToString(); \
  } while (false)

#define GTS_DCHECK(condition) GTS_CHECK(condition)

#endif  // GTS_COMMON_LOGGING_H_
