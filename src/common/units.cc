#include "common/units.h"

#include <cstdio>

namespace gts {

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kTiB) {
    std::snprintf(buf, sizeof(buf), "%.2f TiB", static_cast<double>(bytes) / kTiB);
  } else if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(bytes) / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace gts
