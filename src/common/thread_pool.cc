#include "common/thread_pool.h"

#include "common/logging.h"

namespace gts {

ThreadPool::ThreadPool(size_t num_threads) {
  GTS_CHECK(num_threads > 0) << "thread pool needs at least one worker";
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Block-partition the index space so each worker gets one contiguous chunk;
  // fine-grained work stealing is unnecessary for our page-sized tasks.
  const size_t workers = std::min(n, threads_.size());
  const size_t chunk = (n + workers - 1) / workers;
  // Completion is tracked per call, not via the pool-wide Wait(): Wait()
  // returns when *all* queued tasks drain, so with two concurrent
  // ParallelFor callers one could return while its own chunks still sit in
  // the queue behind the other caller's (observing the other's
  // completion). The locals below outlive every chunk because this frame
  // blocks until done == workers.
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t done = 0;
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(n, begin + chunk);
    Submit([&fn, &done_mu, &done_cv, &done, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
      // Notify while holding done_mu: the caller destroys these stack
      // objects the moment its wait observes done == workers, so the
      // notify must not be reachable after the caller can wake.
      std::lock_guard<std::mutex> lock(done_mu);
      ++done;
      done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&done, workers] { return done == workers; });
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    // Destroy the closure before reporting idle so resources captured by
    // the task are released by the time Wait() returns.
    task = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace gts
