// Deterministic, fast PRNGs used by the graph generators and tests.
//
// We avoid std::mt19937 on hot generation paths: xoshiro256** is ~4x faster
// and its output is fully specified, so generated graphs are reproducible
// across platforms and standard-library versions.
#ifndef GTS_COMMON_RANDOM_H_
#define GTS_COMMON_RANDOM_H_

#include <cstdint>

namespace gts {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna; public-domain reference algorithm.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping (slight bias is fine
    // for workload generation; determinism is what matters).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace gts

#endif  // GTS_COMMON_RANDOM_H_
