// Byte-size constants and formatting helpers.
#ifndef GTS_COMMON_UNITS_H_
#define GTS_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace gts {

inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;
inline constexpr uint64_t kTiB = 1024ULL * kGiB;

/// Formats a byte count as a short human string, e.g. "1.5 MiB".
std::string FormatBytes(uint64_t bytes);

/// Formats a simulated duration in seconds, e.g. "12.3 ms".
std::string FormatSeconds(double seconds);

}  // namespace gts

#endif  // GTS_COMMON_UNITS_H_
