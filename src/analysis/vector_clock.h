// A dense vector clock over the detector's logical lanes.
//
// Lane ids are small consecutive integers handed out by the RaceDetector's
// lane registry (host, per-(gpu,stream) lanes, per-GPU copy-engine lanes,
// per-storage-device lanes, host-CPU co-processing lanes), so a plain
// vector indexed by lane id is both the fastest and the simplest
// representation. Components default to 0: a lane that never interacted
// is "before everything".
#ifndef GTS_ANALYSIS_VECTOR_CLOCK_H_
#define GTS_ANALYSIS_VECTOR_CLOCK_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gts {
namespace analysis {

class VectorClock {
 public:
  /// The component for `lane`; 0 if never set.
  uint64_t Get(size_t lane) const {
    return lane < t_.size() ? t_[lane] : 0;
  }

  void Set(size_t lane, uint64_t value) {
    if (lane >= t_.size()) t_.resize(lane + 1, 0);
    t_[lane] = value;
  }

  /// Advances this lane's own component by one (a new logical operation).
  void Tick(size_t lane) { Set(lane, Get(lane) + 1); }

  /// Component-wise max: afterwards everything `other` has seen
  /// happens-before this clock's current point.
  void Join(const VectorClock& other) {
    if (other.t_.size() > t_.size()) t_.resize(other.t_.size(), 0);
    for (size_t i = 0; i < other.t_.size(); ++i) {
      t_[i] = std::max(t_[i], other.t_[i]);
    }
  }

  size_t size() const { return t_.size(); }

 private:
  std::vector<uint64_t> t_;
};

}  // namespace analysis
}  // namespace gts

#endif  // GTS_ANALYSIS_VECTOR_CLOCK_H_
