// The gts::analysis result block: per-run race diagnostics from the
// happens-before detector plus schedule-invariant violations from the
// ScheduleValidator. One RaceReport rides inside RunMetrics (and therefore
// through RunMetrics::Accumulate into RunReport), so loop drivers get the
// union of every pass's findings for free.
#ifndef GTS_ANALYSIS_RACE_REPORT_H_
#define GTS_ANALYSIS_RACE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/schedule.h"
#include "graph/types.h"

namespace gts {
namespace analysis {

/// How an access participates in the C++-style conflict matrix lifted to
/// the simulated schedule: two accesses to the same shadow cell race iff
/// at least one is a write, they are not ordered by happens-before, and
/// they are NOT both atomic.
enum class AccessClass : uint8_t {
  kPlainRead = 0,
  kPlainWrite = 1,
  kAtomicRead = 2,
  kAtomicWrite = 3,
};

std::string_view AccessClassName(AccessClass cls);

inline bool IsWrite(AccessClass cls) {
  return cls == AccessClass::kPlainWrite || cls == AccessClass::kAtomicWrite;
}
inline bool IsAtomic(AccessClass cls) {
  return cls == AccessClass::kAtomicRead || cls == AccessClass::kAtomicWrite;
}

/// One side of a detected race, with enough identity for a diagnostic:
/// which logical lane (stream/copy/host/...), which recorded timeline op
/// it ran under, which topology page the kernel was processing, and --
/// after ResolveTimestamps() -- the op's simulated start time.
struct RaceAccess {
  std::string lane;                  ///< e.g. "gpu0.stream3", "host"
  int stream_key = -1;               ///< simulator stream key; -1 for host
  AccessClass cls = AccessClass::kPlainRead;
  gpu::OpIndex op = gpu::kNoOp;      ///< enclosing recorded timeline op
  PageId page = kInvalidPageId;      ///< page being processed (if any)
  double sim_time = -1.0;            ///< op's simulated start; -1 unresolved
};

/// Two conflicting, unordered accesses to one shadow cell.
struct Race {
  /// Shadow domain: WA domains are "gpu<g>.wa" / "cpu.wa"; page-granule
  /// domains are "mmbuf" and "gpu<g>.cache".
  std::string domain;
  uint64_t offset = 0;   ///< byte offset of the granule (WA) or page id
  uint32_t size = 0;     ///< granule size in bytes (0 for page cells)
  RaceAccess first;      ///< the older access (recorded in shadow state)
  RaceAccess second;     ///< the access that tripped the check

  std::string ToString() const;
};

/// One impossible-timeline finding from the ScheduleValidator.
struct ScheduleViolation {
  std::string rule;      ///< e.g. "serial-overlap", "dep-order"
  std::string detail;
  gpu::OpIndex op = gpu::kNoOp;  ///< offending op (kNoOp for event rules)

  std::string ToString() const;
};

/// One finding from the sync::LockRegistry (GTS_SYNC_CHECK builds): a
/// lock-order cycle, a lock-level inversion, a self-deadlock, a
/// wait-while-holding, or a pin-across-safe-point. `first_site` and
/// `second_site` name the two lock sites involved (for a cycle: the held
/// site and the acquired site of the edge that closed it); `detail`
/// carries both acquisition stacks' site names.
struct LockOrderViolation {
  std::string rule;  ///< "lock-order-cycle", "lock-level", "self-deadlock",
                     ///< "wait-while-holding", "pin-across-safe-point"
  std::string first_site;
  std::string second_site;
  std::string detail;

  std::string ToString() const;
};

/// Per-run analysis outcome. Counters are exact; the diagnostic vectors
/// are capped at AnalysisOptions::max_reported entries each.
struct RaceReport {
  bool race_check_ran = false;   ///< detector compiled in and enabled
  bool validator_ran = false;
  bool sync_check_ran = false;   ///< sync wrappers compiled in (this run
                                 ///< harvested the LockRegistry)

  uint64_t wa_accesses = 0;      ///< instrumented accesses observed
  uint64_t races_detected = 0;   ///< conflicts found (>= races.size())
  uint64_t schedule_checks = 0;  ///< validator rule evaluations
  uint64_t violations_detected = 0;
  uint64_t lock_acquisitions = 0;  ///< tracked sync::Mutex acquisitions
  uint64_t lock_order_violations = 0;  ///< >= lock_violations.size()

  std::vector<Race> races;
  std::vector<ScheduleViolation> violations;
  std::vector<LockOrderViolation> lock_violations;

  bool clean() const {
    return races_detected == 0 && violations_detected == 0 &&
           lock_order_violations == 0;
  }

  /// Folds another pass's report into this one (counters sum, flags OR,
  /// diagnostics append; callers cap presentation, not storage).
  void Accumulate(const RaceReport& other);

  /// Multi-line human-readable summary of every stored finding.
  std::string ToString() const;
};

}  // namespace analysis
}  // namespace gts

#endif  // GTS_ANALYSIS_RACE_REPORT_H_
