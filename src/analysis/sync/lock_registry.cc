#include "analysis/sync/lock_registry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace gts {
namespace analysis {
namespace sync {

namespace {

/// GTS_SYNC_STRICT=1 aborts on the first novel violation (the check_sync
/// sweep's enforcement mode). Read once: the sweep sets it per-process.
bool StrictMode() {
  static const bool strict = [] {
    const char* env = std::getenv("GTS_SYNC_STRICT");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return strict;
}

/// ScopedExpectViolations nesting depth (seeded-negative tests).
std::atomic<int> g_expect_violations{0};

std::string ThreadName() {
  std::ostringstream os;
  os << std::this_thread::get_id();
  return os.str();
}

#if GTS_SYNC_CHECK_ENABLED
/// One tracked hold: reentrant self-deadlocks degrade to depth counts so
/// the checked build reports instead of hanging.
struct Held {
  Mutex* m = nullptr;
  uint32_t depth = 0;
};

thread_local std::vector<Held> tls_held;
#endif  // GTS_SYNC_CHECK_ENABLED

}  // namespace

LockRegistry& LockRegistry::Global() {
  static LockRegistry* registry = new LockRegistry();
  return *registry;
}

void LockRegistry::RecordViolationLocked(LockOrderViolation v) {
  ++violations_total_;
  const std::string key = v.rule + "|" + v.first_site + "|" + v.second_site;
  if (!reported_.insert(key).second) return;  // novel findings only
  if (StrictMode() && g_expect_violations.load(std::memory_order_acquire) == 0) {
    std::fprintf(stderr, "GTS_SYNC_STRICT: %s\n", v.ToString().c_str());
    std::abort();
  }
  pending_.push_back(std::move(v));
}

#if GTS_SYNC_CHECK_ENABLED

std::string LockRegistry::HeldStackString() const {
  std::string out = "[";
  for (size_t i = 0; i < tls_held.size(); ++i) {
    if (i > 0) out += " ";
    out += tls_held[i].m->name();
  }
  out += "]";
  return out;
}

int LockRegistry::SiteIdLocked(const char* name, int level) {
  auto it = site_ids_.find(name);
  if (it != site_ids_.end()) {
    const int id = it->second;
    if (level != level::kUnordered && site_levels_[id] != level::kUnordered &&
        site_levels_[id] != level) {
      LockOrderViolation v;
      v.rule = "lock-level-mismatch";
      v.first_site = name;
      v.second_site = name;
      v.detail = "site registered with two distinct levels (" +
                 std::to_string(site_levels_[id]) + " vs " +
                 std::to_string(level) + ")";
      RecordViolationLocked(std::move(v));
    }
    if (site_levels_[id] == level::kUnordered) site_levels_[id] = level;
    return id;
  }
  const int id = static_cast<int>(site_names_.size());
  site_ids_.emplace(name, id);
  site_names_.emplace_back(name);
  site_levels_.push_back(level);
  adj_.emplace_back();
  return id;
}

bool LockRegistry::PathExistsLocked(int from, int to,
                                    std::vector<int>* path) const {
  // Iterative DFS with parent links so the cycle report can name the
  // path's sites. Graphs here are tiny (one node per lock site).
  std::vector<int> parent(site_names_.size(), -1);
  std::vector<int> stack{from};
  std::vector<bool> seen(site_names_.size(), false);
  seen[static_cast<size_t>(from)] = true;
  while (!stack.empty()) {
    const int at = stack.back();
    stack.pop_back();
    if (at == to) {
      if (path != nullptr) {
        for (int n = to; n != -1; n = parent[static_cast<size_t>(n)]) {
          path->push_back(n);
        }
        // parent chain runs to -> ... -> from; flip to from -> ... -> to.
        for (size_t i = 0, j = path->size() - 1; i < j; ++i, --j) {
          std::swap((*path)[i], (*path)[j]);
        }
      }
      return true;
    }
    for (const Edge& e : adj_[static_cast<size_t>(at)]) {
      if (seen[static_cast<size_t>(e.to)]) continue;
      seen[static_cast<size_t>(e.to)] = true;
      parent[static_cast<size_t>(e.to)] = at;
      stack.push_back(e.to);
    }
  }
  return false;
}

bool LockRegistry::OnLockAttempt(Mutex* m) {
  for (Held& h : tls_held) {
    if (h.m != m) continue;
    ++h.depth;
    std::lock_guard<std::mutex> lock(mu_);
    LockOrderViolation v;
    v.rule = "self-deadlock";
    v.first_site = m->name();
    v.second_site = m->name();
    v.detail = "thread " + ThreadName() + " relocked '" + m->name() +
               "' it already holds (stack " + HeldStackString() +
               "); degraded to reentrant depth " + std::to_string(h.depth);
    RecordViolationLocked(std::move(v));
    return true;
  }
  return false;
}

void LockRegistry::OnLocked(Mutex* m) {
  std::lock_guard<std::mutex> lock(mu_);
  ++acquisitions_;
  const int to = SiteIdLocked(m->name(), m->lock_level());
  if (!tls_held.empty()) {
    const int to_level = site_levels_[static_cast<size_t>(to)];
    for (const Held& h : tls_held) {
      const int from = SiteIdLocked(h.m->name(), h.m->lock_level());
      if (from == to) continue;  // another instance of the same site
      const int from_level = site_levels_[static_cast<size_t>(from)];
      if (to_level != level::kUnordered && from_level != level::kUnordered &&
          to_level <= from_level) {
        LockOrderViolation v;
        v.rule = "lock-level";
        v.first_site = h.m->name();
        v.second_site = m->name();
        v.detail = "acquired '" + std::string(m->name()) + "' (level " +
                   std::to_string(to_level) + ") while holding '" +
                   h.m->name() + "' (level " + std::to_string(from_level) +
                   "); declared order requires strictly increasing levels "
                   "(stack " +
                   HeldStackString() + ", thread " + ThreadName() + ")";
        RecordViolationLocked(std::move(v));
      }
      const uint64_t key =
          (static_cast<uint64_t>(from) << 32) | static_cast<uint32_t>(to);
      if (!edge_keys_.insert(key).second) continue;
      // New order edge from -> to: a pre-existing path to -> ... -> from
      // closes a cycle. Check before inserting so the reported reverse
      // path never includes the new edge itself.
      std::vector<int> path;
      if (PathExistsLocked(to, from, &path)) {
        const Edge* reverse = nullptr;
        for (const Edge& e : adj_[static_cast<size_t>(to)]) {
          if (path.size() > 1 && e.to == path[1]) {
            reverse = &e;
            break;
          }
        }
        std::string cycle;
        for (int n : path) {
          cycle += site_names_[static_cast<size_t>(n)] + " -> ";
        }
        cycle += site_names_[static_cast<size_t>(to)];
        LockOrderViolation v;
        v.rule = "lock-order-cycle";
        v.first_site = h.m->name();
        v.second_site = m->name();
        v.detail = "acquiring '" + std::string(m->name()) +
                   "' while holding stack " + HeldStackString() +
                   " (thread " + ThreadName() + ") closes the cycle " +
                   cycle;
        if (reverse != nullptr) {
          v.detail += "; the reverse order was first seen holding " +
                      reverse->holder_stack + " (thread " +
                      reverse->thread_name + ")";
        }
        RecordViolationLocked(std::move(v));
      }
      Edge e;
      e.to = to;
      e.holder_stack = HeldStackString();
      e.thread_name = ThreadName();
      adj_[static_cast<size_t>(from)].push_back(std::move(e));
      ++edges_;
    }
  }
  tls_held.push_back(Held{m, 0});
}

bool LockRegistry::OnUnlock(Mutex* m) {
  for (size_t i = tls_held.size(); i > 0; --i) {
    Held& h = tls_held[i - 1];
    if (h.m != m) continue;
    if (h.depth > 0) {
      --h.depth;
      return true;  // reentrant degrade: the real mutex stays locked
    }
    tls_held.erase(tls_held.begin() + static_cast<long>(i - 1));
    return false;
  }
  // Unlock of a mutex this thread never tracked (should not happen with
  // RAII holders); let the underlying unlock proceed.
  return false;
}

void LockRegistry::OnWait(Mutex* m) {
  for (const Held& h : tls_held) {
    if (h.m == m) continue;
    std::lock_guard<std::mutex> lock(mu_);
    LockOrderViolation v;
    v.rule = "wait-while-holding";
    v.first_site = h.m->name();
    v.second_site = m->name();
    v.detail = "CondVar::wait on '" + std::string(m->name()) +
               "' while still holding '" + h.m->name() + "' (stack " +
               HeldStackString() + ", thread " + ThreadName() +
               "): the held lock cannot be released by the wakeup path";
    RecordViolationLocked(std::move(v));
    return;  // one finding per wait is enough
  }
}

// ---- sync.h hook trampolines -------------------------------------------

namespace detail {
bool RegistryOnLockAttempt(Mutex* m) {
  return LockRegistry::Global().OnLockAttempt(m);
}
void RegistryOnLocked(Mutex* m) { LockRegistry::Global().OnLocked(m); }
bool RegistryOnUnlock(Mutex* m) {
  return LockRegistry::Global().OnUnlock(m);
}
void RegistryOnWait(Mutex* m) { LockRegistry::Global().OnWait(m); }
}  // namespace detail

#endif  // GTS_SYNC_CHECK_ENABLED

std::thread::id LockRegistry::NotePinAcquired() {
  const std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_[tid];
  return tid;
}

void LockRegistry::NotePinReleased(std::thread::id owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(owner);
  if (it == pins_.end()) return;
  if (--it->second == 0) pins_.erase(it);
}

void LockRegistry::NoteSafePoint(const char* what) {
  const std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(tid);
  if (it == pins_.end() || it->second == 0) return;
  LockOrderViolation v;
  v.rule = "pin-across-safe-point";
  v.first_site = "cache.pin";
  v.second_site = what;
  v.detail = "thread " + ThreadName() + " reached safe point '" + what +
             "' still holding " + std::to_string(it->second) +
             " page-cache pin(s): published page versions could invalidate "
             "bytes the pin is reading";
  RecordViolationLocked(std::move(v));
}

LockRegistry::Drain LockRegistry::TakeViolations() {
  std::lock_guard<std::mutex> lock(mu_);
  Drain drain;
  drain.violations = std::move(pending_);
  pending_.clear();
  drain.violations_detected = violations_total_ - violations_drained_;
  drain.acquisitions = acquisitions_ - acquisitions_drained_;
  violations_drained_ = violations_total_;
  acquisitions_drained_ = acquisitions_;
  return drain;
}

LockRegistry::Stats LockRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.acquisitions = acquisitions_;
  s.sites = site_names_.size();
  s.edges = edges_;
  s.violations_detected = violations_total_;
  return s;
}

uint64_t LockRegistry::violations_detected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_total_;
}

void LockRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  site_ids_.clear();
  site_names_.clear();
  site_levels_.clear();
  adj_.clear();
  edge_keys_.clear();
  reported_.clear();
  pending_.clear();
  pins_.clear();
}

ScopedExpectViolations::ScopedExpectViolations() {
  g_expect_violations.fetch_add(1, std::memory_order_acq_rel);
}

ScopedExpectViolations::~ScopedExpectViolations() {
  g_expect_violations.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace sync
}  // namespace analysis
}  // namespace gts
