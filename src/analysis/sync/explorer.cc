#include "analysis/sync/explorer.h"

#include <sstream>

#if GTS_SYNC_CHECK_ENABLED
#include <algorithm>
#include <atomic>
#include <chrono>
#endif

namespace gts {
namespace analysis {
namespace sync {

std::string Explorer::Result::ToString() const {
  std::ostringstream os;
  os << "explored " << schedules_run << " schedule(s), " << distinct_schedules
     << " distinct" << (exhausted ? " (bound exhausted)" : "") << ", "
     << failures.size() << " failure(s)";
  for (const Failure& f : failures) os << "\n  " << f.ToString();
  return os.str();
}

#if GTS_SYNC_CHECK_ENABLED

namespace {

/// Managed-thread identity: set for the lifetime of a ThreadMain.
thread_local Explorer* tls_explorer = nullptr;
thread_local int tls_index = -1;

/// The explorer currently inside a schedule, for notify hooks reached
/// from unmanaged threads (e.g. an engine worker completing a job a
/// managed thread waits on).
std::atomic<Explorer*> g_active{nullptr};

uint64_t XorShift(uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

Explorer::Explorer() : Explorer(Options()) {}

Explorer::Explorer(Options options) : options_(std::move(options)) {}

Explorer::~Explorer() = default;

void Explorer::RecordFailure(const std::string& message) {
  failures_.push_back(Failure{schedule_, message});
}

void Explorer::Check(bool ok, const std::string& message) {
  if (ok) return;
  std::unique_lock<std::mutex> ctl(ctl_mu_);
  RecordFailure(message);
}

bool Explorer::Admissible(const Decision& d, size_t order_pos) const {
  const int tid = d.candidates[static_cast<size_t>(d.order[order_pos])];
  const int delta = (d.last_active_runnable && tid != d.last_active) ? 1 : 0;
  return d.preemptions_before + delta <= options_.max_preemptions;
}

bool Explorer::AdvancePlan() {
  while (!decisions_.empty()) {
    const Decision& d = decisions_.back();
    for (size_t p = d.order_pos + 1; p < d.order.size(); ++p) {
      if (!Admissible(d, p)) continue;
      plan_.clear();
      for (size_t i = 0; i + 1 < decisions_.size(); ++i) {
        const Decision& prev = decisions_[i];
        plan_.push_back(prev.order[prev.order_pos]);
      }
      plan_.push_back(d.order[p]);
      return true;
    }
    decisions_.pop_back();
  }
  return false;
}

std::vector<int> Explorer::RunnableLocked() const {
  std::vector<int> out;
  for (size_t i = 0; i < threads_.size(); ++i) {
    const ThreadState& t = *threads_[i];
    switch (t.state) {
      case State::kRunnable:
        out.push_back(static_cast<int>(i));
        break;
      case State::kBlockedMutex:
        // Runnable once no managed thread cooperatively holds the mutex
        // (the granted thread re-probes with try_lock).
        if (t.waiting_mutex != nullptr &&
            t.waiting_mutex->coop_owner.load(std::memory_order_acquire) ==
                -1) {
          out.push_back(static_cast<int>(i));
        }
        break;
      case State::kRunning:
      case State::kBlockedCv:
      case State::kDone:
        break;
    }
  }
  return out;
}

int Explorer::Choose(std::unique_lock<std::mutex>& ctl,
                     const std::vector<int>& candidates) {
  (void)ctl;  // held by the coordinator; Choose only mutates plan state
  if (candidates.size() == 1) return candidates[0];

  const size_t pos = decision_pos_++;
  const bool la_runnable =
      std::find(candidates.begin(), candidates.end(), last_active_) !=
      candidates.end();
  // Enumeration order: the non-preemptive default (keep the last-run
  // thread going) first, then the remaining candidates ascending.
  const size_t default_j =
      la_runnable ? static_cast<size_t>(
                        std::find(candidates.begin(), candidates.end(),
                                  last_active_) -
                        candidates.begin())
                  : 0;
  size_t chosen_j = default_j;

  if (mode_ == Mode::kReplay) {
    if (pos < replay_plan_.size()) {
      const int want = replay_plan_[pos];
      auto it = std::find(candidates.begin(), candidates.end(), want);
      if (it == candidates.end()) {
        RecordFailure("replay diverged at decision " + std::to_string(pos) +
                      ": thread " + std::to_string(want) +
                      " is not runnable");
        replay_diverged_ = true;
        abort_ = true;
        return candidates[0];
      }
      chosen_j = static_cast<size_t>(it - candidates.begin());
    }
  } else if (mode_ == Mode::kDfs) {
    if (pos < plan_.size()) chosen_j = static_cast<size_t>(plan_[pos]);
    Decision d;
    d.candidates = candidates;
    d.order.push_back(static_cast<int>(default_j));
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (j != default_j) d.order.push_back(static_cast<int>(j));
    }
    auto it = std::find(d.order.begin(), d.order.end(),
                        static_cast<int>(chosen_j));
    d.order_pos = static_cast<size_t>(it - d.order.begin());
    d.last_active = last_active_;
    d.last_active_runnable = la_runnable;
    d.preemptions_before = preemptions_;
    decisions_.push_back(std::move(d));
  } else {  // kRandom: unbounded -- past-the-bound schedules live here
    chosen_j = static_cast<size_t>(XorShift(rng_state_) % candidates.size());
  }

  const int chosen = candidates[chosen_j];
  if (la_runnable && chosen != last_active_) ++preemptions_;
  if (!schedule_.empty()) schedule_ += ".";
  schedule_ += std::to_string(chosen);
  return chosen;
}

void Explorer::Grant(std::unique_lock<std::mutex>& ctl, int idx) {
  active_ = idx;
  last_active_ = idx;
  ctl_cv_.notify_all();
  ctl_cv_.wait(ctl, [&] { return active_ == -1; });
}

void Explorer::Park(std::unique_lock<std::mutex>& ctl, int idx, State state) {
  threads_[static_cast<size_t>(idx)]->state = state;
  active_ = -1;
  ctl_cv_.notify_all();
  ctl_cv_.wait(ctl, [&] { return active_ == idx; });
  if (abort_) throw AbortSchedule{};
  threads_[static_cast<size_t>(idx)]->state = State::kRunning;
}

void Explorer::ReleaseAllLocked(std::unique_lock<std::mutex>& ctl) {
  abort_ = true;
  for (;;) {
    int next = -1;
    for (size_t i = 0; i < threads_.size(); ++i) {
      if (threads_[i]->state != State::kDone) {
        next = static_cast<int>(i);
        break;
      }
    }
    if (next == -1) return;
    Grant(ctl, next);  // the thread observes abort_ and unwinds to done
  }
}

void Explorer::DeclareDeadlock(std::unique_lock<std::mutex>& ctl) {
  std::ostringstream os;
  os << "deadlock:";
  for (size_t i = 0; i < threads_.size(); ++i) {
    const ThreadState& t = *threads_[i];
    if (t.state == State::kDone) continue;
    os << " thread " << i;
    if (t.state == State::kBlockedMutex && t.waiting_mutex != nullptr) {
      os << " blocked acquiring '" << t.waiting_mutex->name() << "'";
      const int owner =
          t.waiting_mutex->coop_owner.load(std::memory_order_acquire);
      if (owner >= 0) os << " held by thread " << owner;
    } else if (t.state == State::kBlockedCv) {
      os << " waiting on a condvar with no pending notify";
    } else {
      os << " not yet scheduled";
    }
    os << ";";
  }
  RecordFailure(os.str());
  ReleaseAllLocked(ctl);
}

void Explorer::ThreadMain(int idx, std::function<void()> fn) {
  tls_explorer = this;
  tls_index = idx;
  bool aborted = false;
  {
    std::unique_lock<std::mutex> ctl(ctl_mu_);
    ctl_cv_.wait(ctl, [&] { return active_ == idx; });
    if (abort_) {
      aborted = true;
    } else {
      threads_[static_cast<size_t>(idx)]->state = State::kRunning;
    }
  }
  if (!aborted) {
    try {
      fn();
    } catch (const AbortSchedule&) {
    } catch (const std::exception& e) {
      std::unique_lock<std::mutex> ctl(ctl_mu_);
      RecordFailure("thread " + std::to_string(idx) +
                    " threw: " + e.what());
    } catch (...) {
      std::unique_lock<std::mutex> ctl(ctl_mu_);
      RecordFailure("thread " + std::to_string(idx) +
                    " threw a non-exception");
    }
  }
  {
    std::unique_lock<std::mutex> ctl(ctl_mu_);
    ThreadState& t = *threads_[static_cast<size_t>(idx)];
    // An aborted unwind can leave cooperatively-held mutexes locked;
    // force-release so the next schedule starts clean.
    for (auto it = t.held.rbegin(); it != t.held.rend(); ++it) {
      (*it)->coop_owner.store(-1, std::memory_order_release);
      (*it)->UnlockRaw();
    }
    t.held.clear();
    t.state = State::kDone;
    active_ = -1;
    ctl_cv_.notify_all();
  }
  tls_explorer = nullptr;
  tls_index = -1;
}

void Explorer::Run(std::vector<std::function<void()>> thunks) {
  {
    std::unique_lock<std::mutex> ctl(ctl_mu_);
    for (size_t i = 0; i < thunks.size(); ++i) {
      threads_.push_back(new ThreadState());
    }
    active_ = -1;
  }
  for (size_t i = 0; i < thunks.size(); ++i) {
    threads_[i]->thread = std::thread(
        [this, i, fn = std::move(thunks[i])]() mutable {
          ThreadMain(static_cast<int>(i), std::move(fn));
        });
  }

  std::unique_lock<std::mutex> ctl(ctl_mu_);
  for (;;) {
    bool all_done = true;
    for (const ThreadState* t : threads_) {
      if (t->state != State::kDone) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;

    std::vector<int> candidates = RunnableLocked();
    if (candidates.empty()) {
      // A condvar wait may be released by an unmanaged thread (e.g. an
      // engine worker); give it a bounded real-time window before
      // declaring the schedule dead.
      bool any_cv = false;
      for (const ThreadState* t : threads_) {
        any_cv |= t->state == State::kBlockedCv;
      }
      if (any_cv) {
        ctl_cv_.wait_for(
            ctl, std::chrono::milliseconds(options_.deadlock_timeout_ms));
        candidates = RunnableLocked();
      }
      if (candidates.empty()) {
        DeclareDeadlock(ctl);
        continue;
      }
    }

    const int idx = Choose(ctl, candidates);
    if (abort_) {
      ReleaseAllLocked(ctl);
      continue;
    }
    Grant(ctl, idx);
  }
  ctl.unlock();

  for (ThreadState* t : threads_) {
    if (t->thread.joinable()) t->thread.join();
    delete t;
  }
  threads_.clear();
}

bool Explorer::CoopLock(Mutex* m) {
  const int idx = tls_index;
  ThreadState& t = *threads_[static_cast<size_t>(idx)];
  std::unique_lock<std::mutex> ctl(ctl_mu_);
  // THE preemption point: every acquisition lets the scheduler switch.
  Park(ctl, idx, State::kRunnable);
  while (!m->TryLockRaw()) {
    if (m->coop_owner.load(std::memory_order_acquire) == -1) {
      // Held by an unmanaged thread: real-yield and retry (the
      // coordinator keeps treating us as runnable).
      ctl.unlock();
      std::this_thread::yield();
      ctl.lock();
      continue;
    }
    t.waiting_mutex = m;
    Park(ctl, idx, State::kBlockedMutex);
  }
  t.waiting_mutex = nullptr;
  m->coop_owner.store(idx, std::memory_order_release);
  t.held.push_back(m);
  return true;
}

bool Explorer::CoopUnlock(Mutex* m) {
  const int idx = tls_index;
  if (m->coop_owner.load(std::memory_order_acquire) != idx) return false;
  ThreadState& t = *threads_[static_cast<size_t>(idx)];
  m->coop_owner.store(-1, std::memory_order_release);
  m->UnlockRaw();
  auto it = std::find(t.held.begin(), t.held.end(), m);
  if (it != t.held.end()) t.held.erase(it);
  return true;
}

bool Explorer::CoopWait(CondVar* cv, UniqueLock* lk) {
  const int idx = tls_index;
  ThreadState& t = *threads_[static_cast<size_t>(idx)];
  {
    std::unique_lock<std::mutex> ctl(ctl_mu_);
    t.waiting_cv = cv;
  }
  lk->unlock();  // full wrapper unlock: registry bookkeeping + coop release
  {
    std::unique_lock<std::mutex> ctl(ctl_mu_);
    // A notify may have landed between registration and parking.
    if (t.waiting_cv == cv) Park(ctl, idx, State::kBlockedCv);
  }
  lk->lock();  // wrapper relock (its own yield + registry hooks)
  return true;
}

void Explorer::CoopNotify(CondVar* cv) {
  std::unique_lock<std::mutex> ctl(ctl_mu_);
  for (ThreadState* t : threads_) {
    if (t->waiting_cv != cv) continue;
    t->waiting_cv = nullptr;
    if (t->state == State::kBlockedCv) t->state = State::kRunnable;
  }
  ctl_cv_.notify_all();  // wake a coordinator parked in the cv grace wait
}

void Explorer::RunSchedule(const std::function<void(Explorer&)>& body,
                           Mode mode) {
  mode_ = mode;
  schedule_.clear();
  decisions_.clear();
  decision_pos_ = 0;
  preemptions_ = 0;
  last_active_ = -1;
  abort_ = false;
  replay_diverged_ = false;
  g_active.store(this, std::memory_order_release);
  body(*this);
  g_active.store(nullptr, std::memory_order_release);
}

Explorer::Result Explorer::Explore(
    const std::function<void(Explorer&)>& body) {
  Result res;
  failures_.clear();

  if (!options_.replay.empty()) {
    replay_plan_.clear();
    std::istringstream is(options_.replay);
    std::string part;
    while (std::getline(is, part, '.')) {
      if (!part.empty()) replay_plan_.push_back(std::stoi(part));
    }
    RunSchedule(body, Mode::kReplay);
    res.schedules_run = 1;
    res.distinct_schedules = 1;
    res.failures = failures_;
    return res;
  }

  std::unordered_set<std::string> seen;

  // Phase 1: exhaustive DFS within the preemption bound.
  plan_.clear();
  while (res.schedules_run < options_.max_schedules) {
    RunSchedule(body, Mode::kDfs);
    ++res.schedules_run;
    seen.insert(schedule_);
    if (options_.fail_fast && !failures_.empty()) break;
    if (!AdvancePlan()) {
      res.exhausted = true;
      break;
    }
  }

  // Phase 2: seeded-random beyond the bound (and beyond DFS coverage).
  if (!res.exhausted && !(options_.fail_fast && !failures_.empty())) {
    rng_state_ = options_.seed != 0 ? options_.seed : 0x9e3779b97f4a7c15ULL;
    while (res.schedules_run < options_.max_schedules) {
      RunSchedule(body, Mode::kRandom);
      ++res.schedules_run;
      seen.insert(schedule_);
      if (options_.fail_fast && !failures_.empty()) break;
    }
  }

  res.distinct_schedules = static_cast<int>(seen.size());
  res.failures = failures_;
  return res;
}

// ---- sync.h hook trampolines -------------------------------------------

namespace detail {

bool ExplorerLock(Mutex* m) {
  Explorer* ex = tls_explorer;
  return ex != nullptr && ex->CoopLock(m);
}

bool ExplorerUnlock(Mutex* m) {
  Explorer* ex = tls_explorer;
  return ex != nullptr && ex->CoopUnlock(m);
}

bool ExplorerWait(CondVar* cv, UniqueLock* lk) {
  Explorer* ex = tls_explorer;
  return ex != nullptr && ex->CoopWait(cv, lk);
}

void ExplorerNotify(CondVar* cv) {
  Explorer* ex = tls_explorer;
  if (ex == nullptr) ex = g_active.load(std::memory_order_acquire);
  if (ex != nullptr) ex->CoopNotify(cv);
}

}  // namespace detail

#else  // !GTS_SYNC_CHECK_ENABLED

// OFF builds keep the API shape so tests compile: Explore runs the body
// once with plain sequential thunk execution (no serialization, no
// schedule enumeration). Tests gate real assertions on kSyncCheckCompiled.

Explorer::Explorer() : Explorer(Options()) {}

Explorer::Explorer(Options options) : options_(std::move(options)) {}

Explorer::~Explorer() = default;

void Explorer::Run(std::vector<std::function<void()>> thunks) {
  for (auto& fn : thunks) fn();
}

void Explorer::Check(bool ok, const std::string& message) {
  if (!ok) failures_.push_back(Failure{schedule_, message});
}

Explorer::Result Explorer::Explore(
    const std::function<void(Explorer&)>& body) {
  failures_.clear();
  body(*this);
  Result res;
  res.schedules_run = 1;
  res.distinct_schedules = 1;
  res.failures = failures_;
  return res;
}

#endif  // GTS_SYNC_CHECK_ENABLED

}  // namespace sync
}  // namespace analysis
}  // namespace gts
