// Global lock-order registry behind the sync::Mutex wrappers (ON builds).
//
// Every acquisition of a sync::Mutex reports here. The registry keeps
// per-thread held-lock stacks and a process-wide lock-order graph whose
// nodes are *sites* (mutex names) and whose edges record "a thread
// acquired B while holding A", together with the full held stack and
// thread observed when the edge was first recorded. On every new edge it
// searches for a cycle: a cycle in the site graph is a potential deadlock
// even if no run ever interleaved into it, and the report names both
// acquisition stacks (the new edge's and the first-recorded reverse
// path's). Four more rules run on the same hooks:
//
//   lock-level:      acquiring a levelled mutex requires its declared
//                    level to exceed every levelled mutex already held
//   self-deadlock:   relocking a mutex the thread already holds (degraded
//                    to a depth-counted reentrant hold so the checked
//                    build reports instead of hanging)
//   wait-while-holding: CondVar::wait while holding any *other* tracked
//                    mutex (the classic nested-monitor deadlock shape)
//   pin-across-safe-point: a PageCache pin still held by a thread when an
//                    ingest safe point (PublishIngest) runs on it
//
// Findings drain into RunMetrics::analysis via GtsEngine::FinalizeRun
// (TakeViolations) and publish as the analysis.lock_* counters. With
// GTS_SYNC_STRICT=1 in the environment a novel violation aborts the
// process with the report on stderr (the check_sync sweep's enforcement
// mode); ScopedExpectViolations suppresses the abort for seeded-negative
// tests.
//
// Compiled only when GTS_SYNC_CHECK_ENABLED (sync.h gates the include
// sites); the header itself is ifdef-free so tools can lint it alone.
#ifndef GTS_ANALYSIS_SYNC_LOCK_REGISTRY_H_
#define GTS_ANALYSIS_SYNC_LOCK_REGISTRY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/race_report.h"
#include "analysis/sync/sync.h"

namespace gts {
namespace analysis {
namespace sync {

class LockRegistry {
 public:
  /// Snapshot counters (cumulative since process start).
  struct Stats {
    uint64_t acquisitions = 0;
    uint64_t sites = 0;
    uint64_t edges = 0;
    uint64_t violations_detected = 0;
  };

  /// One TakeViolations() harvest: the novel violations recorded since
  /// the previous drain plus the counter deltas over the same window.
  struct Drain {
    std::vector<LockOrderViolation> violations;
    uint64_t violations_detected = 0;
    uint64_t acquisitions = 0;
  };

  /// The process-wide registry every sync::Mutex reports to.
  static LockRegistry& Global();

  // ---- sync::Mutex / sync::CondVar hooks (see sync.h detail::*) -------
  bool OnLockAttempt(Mutex* m);
  void OnLocked(Mutex* m);
  bool OnUnlock(Mutex* m);
  void OnWait(Mutex* m);

  // ---- PageCache pin rule ---------------------------------------------
  /// Registers a pin acquired on the calling thread; the returned id is
  /// the owner key NotePinReleased needs (pins may release on another
  /// thread -- push-mode kernels run the closure on a stream worker).
  std::thread::id NotePinAcquired();
  void NotePinReleased(std::thread::id owner);
  /// Declares a safe point (e.g. "ingest-publish") on the calling thread;
  /// a pin still held by it is a pin-across-safe-point violation.
  void NoteSafePoint(const char* what);

  // ---- Harvest / introspection ----------------------------------------
  Drain TakeViolations();
  Stats snapshot() const;
  /// Cumulative violations (never reset; trace metadata reads this).
  uint64_t violations_detected() const;

  /// Test hook: forgets the order graph, reported-set, and pending
  /// violations (counters keep counting). Call with no tracked locks held.
  void ResetForTest();

 private:
  LockRegistry() = default;

  struct Edge {
    int to = -1;
    std::string holder_stack;  ///< held-site names when first recorded
    std::string thread_name;   ///< acquiring thread when first recorded
  };

  /// Interns `name` as a graph node; records a lock-level-mismatch
  /// violation when one site name registers two distinct nonzero levels.
  int SiteIdLocked(const char* name, int level);
  void RecordViolationLocked(LockOrderViolation v);
  /// True when a path `from` -> ... -> `to` exists in the edge graph.
  bool PathExistsLocked(int from, int to, std::vector<int>* path) const;
  std::string HeldStackString() const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, int> site_ids_;
  std::vector<std::string> site_names_;
  std::vector<int> site_levels_;
  std::vector<std::vector<Edge>> adj_;
  std::unordered_set<uint64_t> edge_keys_;
  std::unordered_set<std::string> reported_;
  std::vector<LockOrderViolation> pending_;
  std::unordered_map<std::thread::id, uint64_t> pins_;

  uint64_t acquisitions_ = 0;
  uint64_t edges_ = 0;
  uint64_t violations_total_ = 0;
  uint64_t violations_drained_ = 0;
  uint64_t acquisitions_drained_ = 0;
};

/// RAII suppression of the GTS_SYNC_STRICT abort, for tests that seed
/// violations on purpose (the violations are still recorded).
class ScopedExpectViolations {
 public:
  ScopedExpectViolations();
  ~ScopedExpectViolations();
  ScopedExpectViolations(const ScopedExpectViolations&) = delete;
  ScopedExpectViolations& operator=(const ScopedExpectViolations&) = delete;
};

}  // namespace sync
}  // namespace analysis
}  // namespace gts

#endif  // GTS_ANALYSIS_SYNC_LOCK_REGISTRY_H_
