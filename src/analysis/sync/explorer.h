// sync::Explorer -- CHESS/Loom-style controlled concurrency testing.
//
// The explorer serializes a set of test threads so that exactly one runs
// at a time, with context switches permitted only at the sync wrappers'
// yield points (before every sync::Mutex acquisition and at CondVar
// waits). Every run is therefore a deterministic function of the sequence
// of scheduling *decisions* -- the points where more than one thread was
// runnable -- and the explorer systematically enumerates those sequences:
//
//   * exhaustive DFS over all schedules with at most
//     Options::max_preemptions preemptive switches (a switch away from a
//     thread that could have kept running), the CHESS iterative-context-
//     bounding result that most concurrency bugs need very few
//     preemptions;
//   * a seeded-random phase past the bound (or past Options::max_schedules
//     DFS runs), deduplicated by decision string.
//
// A failing schedule -- an invariant Check() that fails, a deadlock among
// managed threads, or an unhandled exception -- is reported as a
// *replayable decision string* ("1.0.2.0...": the thread chosen at each
// decision point). Feeding that string back through Options::replay
// re-runs exactly that interleaving, turning any explorer finding into a
// deterministic regression test.
//
// Usage (ON builds; OFF-mode Explore() runs the body once, unserialized):
//
//   sync::Explorer ex({.max_schedules = 2000, .max_preemptions = 2});
//   auto result = ex.Explore([&](sync::Explorer& e) {
//     ReadyQueue q(...);                     // fresh state per schedule
//     e.Run({[&] { q.Push(...); }, [&] { q.TryPop(...); }});
//     e.Check(invariant_holds, "claim cascade lost a page");
//   });
//   ASSERT_TRUE(result.ok()) << result.ToString();
#ifndef GTS_ANALYSIS_SYNC_EXPLORER_H_
#define GTS_ANALYSIS_SYNC_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "analysis/sync/sync.h"

#if GTS_SYNC_CHECK_ENABLED
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_set>
#endif

namespace gts {
namespace analysis {
namespace sync {

class Explorer {
 public:
  struct Options {
    /// Total schedule budget across the DFS and random phases.
    int max_schedules = 2000;
    /// Preemption bound for the exhaustive DFS phase. Schedules needing
    /// more preemptions are only reachable through the random phase.
    int max_preemptions = std::numeric_limits<int>::max();
    /// Seed for the random phase (same seed => same schedules).
    uint64_t seed = 1;
    /// Non-empty: replay exactly this decision string once and stop.
    std::string replay;
    /// Stop exploring at the first failing schedule.
    bool fail_fast = true;
    /// How long the coordinator waits for an *unmanaged* thread (one not
    /// spawned through Run) to unblock a condition wait before declaring
    /// the schedule deadlocked.
    int deadlock_timeout_ms = 100;
  };

  struct Failure {
    std::string schedule;  ///< replayable decision string
    std::string message;

    std::string ToString() const {
      return "[schedule " + (schedule.empty() ? "-" : schedule) + "] " +
             message;
    }
  };

  struct Result {
    int schedules_run = 0;
    int distinct_schedules = 0;
    /// True when the DFS phase enumerated every schedule within the
    /// preemption bound (the random phase then adds nothing new).
    bool exhausted = false;
    std::vector<Failure> failures;

    bool ok() const { return failures.empty(); }
    std::string ToString() const;
  };

  Explorer();
  explicit Explorer(Options options);
  ~Explorer();

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// Runs `body` once per explored schedule. The body sets up fresh state,
  /// calls Run() exactly once with the competing thunks, then asserts
  /// invariants through Check().
  Result Explore(const std::function<void(Explorer&)>& body);

  /// Spawns one managed thread per thunk and coordinates them to one
  /// serialized schedule; returns when all have finished. Only valid
  /// inside an Explore() body.
  void Run(std::vector<std::function<void()>> thunks);

  /// Records a failure against the current schedule when `ok` is false.
  void Check(bool ok, const std::string& message);

  /// Decision string of the schedule currently being (or just) run.
  const std::string& current_schedule() const { return schedule_; }

#if GTS_SYNC_CHECK_ENABLED
  // ---- sync.h detail:: hook backends (managed threads only) -------------
  bool CoopLock(Mutex* m);
  bool CoopUnlock(Mutex* m);
  bool CoopWait(CondVar* cv, UniqueLock* lk);
  void CoopNotify(CondVar* cv);
#endif

 private:
  Options options_;
  std::string schedule_;
  std::vector<Failure> failures_;

#if GTS_SYNC_CHECK_ENABLED
  enum class Mode { kDfs, kRandom, kReplay };
  enum class State : uint8_t {
    kRunnable,
    kRunning,
    kBlockedMutex,
    kBlockedCv,
    kDone,
  };

  struct ThreadState {
    std::thread thread;
    State state = State::kRunnable;
    Mutex* waiting_mutex = nullptr;
    CondVar* waiting_cv = nullptr;
    std::vector<Mutex*> held;  ///< coop-held; force-released on abort
  };

  /// One multi-candidate scheduling decision (DFS backtracking record).
  struct Decision {
    std::vector<int> candidates;  ///< runnable thread ids, ascending
    std::vector<int> order;       ///< enumeration order over candidates[]
    size_t order_pos = 0;         ///< position in `order` chosen this run
    int last_active = -1;
    bool last_active_runnable = false;
    int preemptions_before = 0;
  };

  struct AbortSchedule {};  ///< thrown at yield points to unwind a thread

  void RunSchedule(const std::function<void(Explorer&)>& body, Mode mode);
  void ThreadMain(int idx, std::function<void()> fn);
  /// Parks the calling managed thread and hands the token back to the
  /// coordinator; returns when the coordinator grants this thread again.
  /// `state` is the parked state (kRunnable = plain yield).
  void Park(std::unique_lock<std::mutex>& ctl, int idx, State state);
  void Grant(std::unique_lock<std::mutex>& ctl, int idx);
  int Choose(std::unique_lock<std::mutex>& ctl,
             const std::vector<int>& candidates);
  std::vector<int> RunnableLocked() const;
  void DeclareDeadlock(std::unique_lock<std::mutex>& ctl);
  void ReleaseAllLocked(std::unique_lock<std::mutex>& ctl);
  /// Advances the DFS plan to the next unexplored schedule; false when the
  /// bounded space is exhausted.
  bool AdvancePlan();
  bool Admissible(const Decision& d, size_t order_pos) const;
  void RecordFailure(const std::string& message);

  Mode mode_ = Mode::kDfs;
  std::vector<int> plan_;        ///< forced candidate picks (DFS prefix)
  std::vector<int> replay_plan_; ///< parsed Options::replay thread ids
  std::vector<Decision> decisions_;
  size_t decision_pos_ = 0;
  int preemptions_ = 0;
  int last_active_ = -1;
  bool abort_ = false;
  bool replay_diverged_ = false;
  uint64_t rng_state_ = 0;

  mutable std::mutex ctl_mu_;
  std::condition_variable ctl_cv_;
  int active_ = -1;  ///< granted thread index; -1 = coordinator
  std::vector<ThreadState*> threads_;
#endif  // GTS_SYNC_CHECK_ENABLED
};

}  // namespace sync
}  // namespace analysis
}  // namespace gts

#endif  // GTS_ANALYSIS_SYNC_EXPLORER_H_
