// gts::analysis::sync -- instrumented synchronization primitives.
//
// Drop-in wrappers for std::mutex / std::scoped_lock / std::unique_lock /
// std::condition_variable used by the concurrency-critical subsystems
// (engine dispatch, PageCache, ReadyQueue, gts::io, JobScheduler,
// gts::ingest). Every wrapped mutex carries a *site name* and a declared
// *lock level*; what the wrappers do with them depends on the build knob:
//
//   -DGTS_SYNC_CHECK=OFF (default): the wrappers are bare std::mutex /
//     std::condition_variable forwarding -- zero cost, no globals, and the
//     recorded schedule (and therefore the fig4 trace) is byte-identical
//     to the pre-wrapper code.
//
//   -DGTS_SYNC_CHECK=ON (GTS_SYNC_CHECK_ENABLED=1): every acquisition is
//     routed through the global LockRegistry (lock_registry.h), which
//     builds the runtime lock-order graph, reports cycles (potential
//     deadlocks) naming both acquisition stacks' sites, and enforces the
//     declared lock-level order plus the wait-while-holding and
//     pin-held-across-safe-point rules. The same hooks are the yield
//     points of the sync::Explorer controlled scheduler (explorer.h),
//     which serializes test threads and systematically replays bounded
//     interleavings of the adopted state machines.
//
// The declared level order (see the table in DESIGN.md section 16):
// levels strictly increase along every legal acquisition chain, so a
// thread may only acquire a mutex whose level is greater than every
// tracked mutex it already holds. Level 0 (kUnordered) opts a site out of
// the level rule (it still participates in the order graph).
#ifndef GTS_ANALYSIS_SYNC_SYNC_H_
#define GTS_ANALYSIS_SYNC_SYNC_H_

#include <condition_variable>
#include <mutex>

// The build knob: -DGTS_SYNC_CHECK=ON defines GTS_SYNC_CHECK_ENABLED=1 on
// the whole target (top-level CMakeLists). Default to "compiled out" so
// translation units that do not go through CMake still build.
#ifndef GTS_SYNC_CHECK_ENABLED
#define GTS_SYNC_CHECK_ENABLED 0
#endif

#if GTS_SYNC_CHECK_ENABLED
#include <atomic>
#endif

// ---- clang -Wthread-safety annotation macros ----------------------------
// No-ops under GCC (and under clang unless -Wthread-safety is on, which
// the sanitizer build enables for clang); they let clang statically check
// GUARDED_BY / REQUIRES contracts against the sync::Mutex capabilities.
#if defined(__clang__)
#define GTS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GTS_THREAD_ANNOTATION(x)
#endif

#define GTS_CAPABILITY(x) GTS_THREAD_ANNOTATION(capability(x))
#define GTS_SCOPED_CAPABILITY GTS_THREAD_ANNOTATION(scoped_lockable)
#define GTS_GUARDED_BY(x) GTS_THREAD_ANNOTATION(guarded_by(x))
#define GTS_REQUIRES(...) GTS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GTS_ACQUIRE(...) GTS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GTS_RELEASE(...) GTS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GTS_EXCLUDES(...) GTS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GTS_NO_THREAD_SAFETY_ANALYSIS \
  GTS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gts {
namespace analysis {
namespace sync {

/// True when this binary was built with -DGTS_SYNC_CHECK=ON.
inline constexpr bool kSyncCheckCompiled = GTS_SYNC_CHECK_ENABLED != 0;

// ---- Declared lock levels ----------------------------------------------
// One constant per registered site; strictly increasing along every legal
// acquisition chain (scheduler < engine < ingest-publish < ingest-harvest
// < dispatch queue < gutters < delta < compactor < cache < io < record).
// Sites
// that never nest with each other may share a level only if they are
// never held together (the registry checks >=, not >).
namespace level {
inline constexpr int kUnordered = 0;           ///< opt out of the level rule
inline constexpr int kScheduler = 10;          ///< job.scheduler
inline constexpr int kEngineDispatch = 20;     ///< engine.dispatch
inline constexpr int kIngestPublish = 22;      ///< ingest.publish
inline constexpr int kIngestHarvest = 24;      ///< ingest.harvest (outer:
                                               ///< snapshots take the
                                               ///< gutter + delta locks)
inline constexpr int kReadyQueue = 30;         ///< dispatch.ready_queue
inline constexpr int kIngestGutterShard = 32;  ///< ingest.gutter_shard
inline constexpr int kIngestGutterPending = 34;  ///< ingest.gutter_pending
inline constexpr int kIngestDelta = 36;        ///< ingest.delta
inline constexpr int kIngestCompactor = 38;    ///< ingest.compactor
inline constexpr int kCache = 40;              ///< cache.page_cache (per GPU)
inline constexpr int kIo = 50;                 ///< io.engine
inline constexpr int kIoDevice = 52;           ///< io.device_queue
inline constexpr int kRecord = 60;             ///< engine.record
}  // namespace level

class Mutex;
class CondVar;
class UniqueLock;

#if GTS_SYNC_CHECK_ENABLED
namespace detail {
// Implemented in lock_registry.cc. OnLockAttempt returns true when the
// calling thread already holds `m` (self-deadlock): the violation is
// recorded and the acquisition degrades to a depth-counted reentrant hold
// so the checked build reports instead of hanging. OnUnlock symmetrically
// returns true while reentrant depth remains.
bool RegistryOnLockAttempt(Mutex* m);
void RegistryOnLocked(Mutex* m);
bool RegistryOnUnlock(Mutex* m);
void RegistryOnWait(Mutex* m);
// Implemented in explorer.cc: cooperative acquisition when the calling
// thread is managed by an active sync::Explorer. Each returns true when
// the explorer handled the operation (including the underlying raw
// lock/unlock); unmanaged threads fall through to the bare primitive.
bool ExplorerLock(Mutex* m);
bool ExplorerUnlock(Mutex* m);
bool ExplorerWait(CondVar* cv, UniqueLock* lk);
void ExplorerNotify(CondVar* cv);
}  // namespace detail
#endif

/// Named, levelled mutex. Immovable (like std::mutex); every instance of
/// one logical site shares the site `name` (e.g. each GPU's PageCache
/// mutex registers as "cache.page_cache"), so the lock-order graph is a
/// graph over sites, not instances.
class GTS_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name, int lock_level = level::kUnordered)
#if GTS_SYNC_CHECK_ENABLED
      : name_(name), level_(lock_level)
#endif
  {
#if !GTS_SYNC_CHECK_ENABLED
    (void)name;
    (void)lock_level;
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if GTS_SYNC_CHECK_ENABLED
  void lock() GTS_ACQUIRE() {
    if (detail::RegistryOnLockAttempt(this)) return;
    if (!detail::ExplorerLock(this)) mu_.lock();
    detail::RegistryOnLocked(this);
  }
  void unlock() GTS_RELEASE() {
    if (detail::RegistryOnUnlock(this)) return;
    if (!detail::ExplorerUnlock(this)) mu_.unlock();
  }

  const char* name() const { return name_; }
  int lock_level() const { return level_; }

  /// Explorer-side raw access (cooperative acquisition probes the
  /// underlying mutex directly; the registry hooks stay in lock()).
  bool TryLockRaw() { return mu_.try_lock(); }
  void UnlockRaw() { mu_.unlock(); }
  /// Index of the managed explorer thread cooperatively holding this
  /// mutex; -1 when free or held by an unmanaged thread.
  std::atomic<int> coop_owner{-1};
#else
  void lock() GTS_ACQUIRE() { mu_.lock(); }
  void unlock() GTS_RELEASE() { mu_.unlock(); }
#endif

  /// The wrapped primitive (OFF-mode CondVar waits on it directly).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
#if GTS_SYNC_CHECK_ENABLED
  const char* name_;
  int level_;
#endif
};

/// std::scoped_lock / lock_guard equivalent over one sync::Mutex.
class GTS_SCOPED_CAPABILITY Lock {
 public:
  explicit Lock(Mutex& mu) GTS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~Lock() GTS_RELEASE() { mu_.unlock(); }

  Lock(const Lock&) = delete;
  Lock& operator=(const Lock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock equivalent: supports deferred and scoped-manual
/// lock/unlock plus CondVar waits. Not movable (no adopted site needs it).
class UniqueLock {
 public:
  struct DeferT {};
  static constexpr DeferT kDefer{};

  explicit UniqueLock(Mutex& mu) : mu_(&mu) { lock(); }
  UniqueLock(Mutex& mu, DeferT) : mu_(&mu) {}
  ~UniqueLock() {
    if (owns_) unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() {
    mu_->lock();
    owns_ = true;
  }
  void unlock() {
    owns_ = false;
    mu_->unlock();
  }
  bool owns_lock() const { return owns_; }
  Mutex* mutex() const { return mu_; }

 private:
  Mutex* mu_;
  bool owns_ = false;
};

/// std::condition_variable equivalent operating on UniqueLock<Mutex>.
///
/// OFF: waits on the wrapped std::mutex through a std::condition_variable
/// (zero added cost). ON: waits through condition_variable_any over the
/// instrumented UniqueLock, so the release/reacquire pair runs the full
/// registry bookkeeping, and the wait itself is a wait-while-holding
/// checkpoint and an Explorer yield point.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

#if GTS_SYNC_CHECK_ENABLED
  void wait(UniqueLock& lk) {
    detail::RegistryOnWait(lk.mutex());
    if (detail::ExplorerWait(this, &lk)) return;
    cv_.wait(lk);
  }
  template <typename Pred>
  void wait(UniqueLock& lk, Pred pred) {
    while (!pred()) wait(lk);
  }
  void notify_one() {
    detail::ExplorerNotify(this);
    cv_.notify_one();
  }
  void notify_all() {
    detail::ExplorerNotify(this);
    cv_.notify_all();
  }

 private:
  std::condition_variable_any cv_;
#else
  void wait(UniqueLock& lk) {
    std::unique_lock<std::mutex> native(lk.mutex()->native(),
                                        std::adopt_lock);
    cv_.wait(native);
    native.release();
  }
  template <typename Pred>
  void wait(UniqueLock& lk, Pred pred) {
    while (!pred()) wait(lk);
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
#endif
};

}  // namespace sync
}  // namespace analysis
}  // namespace gts

#endif  // GTS_ANALYSIS_SYNC_SYNC_H_
