// Post-hoc schedule-invariant validation: replays a gpu::ScheduleResult
// (and the run's pin / io event logs) and rejects impossible timelines.
//
// The discrete-event simulator *should* never produce these; the
// validator is the independent check that it (and every policy feeding
// it) actually didn't. Always compiled -- it is pure post-processing and
// runs after every engine run by default (AnalysisOptions).
//
// Rules over the op timeline:
//   R1 dep-order       a dependency's index precedes the op (an "event
//                      wait" may not precede its record) and the op
//                      starts no earlier than the dependency ends
//   R2 serial-overlap  ops on one serial resource (a storage device or a
//                      copy engine) never overlap in time
//   R3 stream-order    ops sharing a stream_key run in record order
//   R4 kernel-after-h2d a kernel reading a streamed page starts only
//                      after that page's H2D on its stream ends
//   R5 barrier         a barrier starts after every earlier op ends, and
//                      no later op starts before the barrier ends
//   R8 malformed-op    non-negative durations/queue waits, end >= start
//
// Rules over the event logs:
//   R6 pin-lifetime    a cached page is never evicted while a pin is
//                      outstanding, and releases match pins
//   R7 io-order        per request: DeviceQueue submit precedes device
//                      issue precedes delivery to the engine (an io
//                      completion may not be delivered before issue)
//   R9 claim-unique    per ready-queue work item: enqueued exactly once,
//                      claimed at most once, and any claim follows the
//                      enqueue (work stealing must never double-run or
//                      fabricate a page)
//   I1 pin-after-invalidate  once a cached page is invalidated (a
//                      gts::ingest publish superseded its image), no pin
//                      of that pid may occur until a fresh insert
//                      re-admits it -- such a pin would read stale bytes
//
// Job-scoped replay (JobScheduler batch epochs):
//   J1 job-isolation   an op tagged with a job (TimelineOp::job >= 0)
//                      may only depend on ops of the same job or on
//                      untagged infrastructure ops (job == -1); a
//                      cross-job dependency edge means one job's work
//                      was chained behind another's private state
#ifndef GTS_ANALYSIS_SCHEDULE_VALIDATOR_H_
#define GTS_ANALYSIS_SCHEDULE_VALIDATOR_H_

#include <cstdint>
#include <vector>

#include "analysis/event_log.h"
#include "analysis/race_report.h"
#include "gpu/schedule.h"

namespace gts {
namespace analysis {

struct ValidatorOptions {
  /// Absolute slack for floating-point interval comparisons (the
  /// simulator computes ends as start + duration exactly, so this only
  /// guards against representation noise).
  double epsilon = 1e-12;
  /// Cap on stored violation diagnostics (counters stay exact).
  uint32_t max_reported = 64;
};

class ScheduleValidator {
 public:
  explicit ScheduleValidator(ValidatorOptions options = {})
      : options_(options) {}

  /// Runs R1-R5 + R8 over the simulated timeline; findings are appended
  /// to `report` (violations_detected / schedule_checks / violations).
  void Check(const gpu::ScheduleResult& schedule, RaceReport* report) const;

  /// R6 + I1 over a PageCache pin-event log.
  void CheckPinEvents(const std::vector<PinEvent>& events,
                      RaceReport* report) const;

  /// R7 over a gts::io event log.
  void CheckIoEvents(const std::vector<IoEvent>& events,
                     RaceReport* report) const;

  /// R9 over the dispatch ready-queue event log.
  void CheckDispatchEvents(const std::vector<DispatchEvent>& events,
                           RaceReport* report) const;

  /// J1 over a batch epoch's timeline: job-tagged ops depend only on
  /// same-job or untagged ops. A no-op for single-run schedules (no op
  /// carries a tag there).
  void CheckJobIsolation(const gpu::ScheduleResult& schedule,
                         RaceReport* report) const;

 private:
  void AddViolation(RaceReport* report, const char* rule, gpu::OpIndex op,
                    std::string detail) const;

  ValidatorOptions options_;
};

}  // namespace analysis
}  // namespace gts

#endif  // GTS_ANALYSIS_SCHEDULE_VALIDATOR_H_
