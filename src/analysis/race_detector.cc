#include "analysis/race_detector.h"

#include <utility>

#include "common/logging.h"

namespace gts {
namespace analysis {

namespace {

// Lane-registry keys: tag in the top bits, identity below.
constexpr uint64_t kHostKey = 1;
uint64_t StreamLaneKey(int gpu, int stream) {
  return (uint64_t{2} << 40) | (static_cast<uint64_t>(gpu) << 20) |
         static_cast<uint64_t>(stream);
}
uint64_t CopyLaneKey(int gpu) {
  return (uint64_t{3} << 40) | static_cast<uint64_t>(gpu);
}
uint64_t StorageLaneKey(int device) {
  return (uint64_t{4} << 40) | static_cast<uint64_t>(device);
}
uint64_t CpuLaneKey(int lane) {
  return (uint64_t{5} << 40) | static_cast<uint64_t>(lane);
}

uint64_t CellKey(int domain, uint64_t index) {
  return (static_cast<uint64_t>(domain) << 44) | index;
}

/// At least one write, and not both atomic (atomic/atomic pairs are the
/// synchronization idiom the kernels rely on).
bool Conflicts(AccessClass a, AccessClass b) {
  if (!IsWrite(a) && !IsWrite(b)) return false;
  return !(IsAtomic(a) && IsAtomic(b));
}

uint64_t MixHash(uint64_t h, uint64_t v) {
  return (h ^ v) * 1099511628211ull;
}

}  // namespace

std::string RaceDetector::DomainName(int domain) {
  if (domain == kCpuWaDomain) return "cpu.wa";
  if (domain == kMmbufDomain) return "mmbuf";
  if (domain >= 2000) return "gpu" + std::to_string(domain - 2000) + ".cache";
  return "gpu" + std::to_string(domain) + ".wa";
}

void RaceDetector::BeginRun() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Lane& lane : lanes_) lane.clock = VectorClock();
  events_.clear();
  page_ready_.clear();
  shadow_.clear();
  races_.clear();
  race_keys_.clear();
  races_detected_ = 0;
  wa_accesses_ = 0;
}

void RaceDetector::ResolveTimestamps(const gpu::ScheduleResult& schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Race& race : races_) {
    for (RaceAccess* a : {&race.first, &race.second}) {
      if (a->op != gpu::kNoOp && a->op < schedule.ops.size()) {
        a->sim_time = schedule.ops[a->op].start;
      }
    }
  }
}

RaceReport RaceDetector::TakeReport() {
  std::lock_guard<std::mutex> lock(mu_);
  RaceReport report;
  report.race_check_ran = true;
  report.wa_accesses = wa_accesses_;
  report.races_detected = races_detected_;
  report.races = std::move(races_);
  races_.clear();
  race_keys_.clear();
  races_detected_ = 0;
  wa_accesses_ = 0;
  return report;
}

int RaceDetector::LaneLocked(uint64_t key, std::string name, int stream_key) {
  auto [it, inserted] = lane_ids_.try_emplace(key, -1);
  if (inserted) {
    it->second = static_cast<int>(lanes_.size());
    lanes_.push_back(Lane{std::move(name), stream_key, VectorClock()});
  }
  return it->second;
}

int RaceDetector::HostLane() {
  std::lock_guard<std::mutex> lock(mu_);
  return LaneLocked(kHostKey, "host", -1);
}

int RaceDetector::StreamLane(int gpu, int stream, int stream_key) {
  std::lock_guard<std::mutex> lock(mu_);
  return LaneLocked(StreamLaneKey(gpu, stream),
                    "gpu" + std::to_string(gpu) + ".stream" +
                        std::to_string(stream),
                    stream_key);
}

int RaceDetector::CopyLane(int gpu) {
  std::lock_guard<std::mutex> lock(mu_);
  return LaneLocked(CopyLaneKey(gpu), "gpu" + std::to_string(gpu) + ".copy",
                    -1);
}

int RaceDetector::StorageLane(int device) {
  std::lock_guard<std::mutex> lock(mu_);
  return LaneLocked(StorageLaneKey(device),
                    "storage" + std::to_string(device), -1);
}

int RaceDetector::CpuLane(int lane, int stream_key) {
  std::lock_guard<std::mutex> lock(mu_);
  return LaneLocked(CpuLaneKey(lane), "cpu" + std::to_string(lane),
                    stream_key);
}

void RaceDetector::BeginOp(int lane) {
  std::lock_guard<std::mutex> lock(mu_);
  lanes_[lane].clock.Tick(static_cast<size_t>(lane));
}

void RaceDetector::Join(int dst, int src) {
  std::lock_guard<std::mutex> lock(mu_);
  lanes_[dst].clock.Join(lanes_[src].clock);
  // Release-tick: the source's *later* steps must not inherit this edge.
  lanes_[src].clock.Tick(static_cast<size_t>(src));
}

void RaceDetector::Fuse(int a, int b) {
  std::lock_guard<std::mutex> lock(mu_);
  lanes_[a].clock.Join(lanes_[b].clock);
  lanes_[b].clock.Join(lanes_[a].clock);
  lanes_[a].clock.Tick(static_cast<size_t>(a));
  lanes_[b].clock.Tick(static_cast<size_t>(b));
}

int RaceDetector::RecordEvent(int lane) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(lanes_[lane].clock);
  lanes_[lane].clock.Tick(static_cast<size_t>(lane));
  return static_cast<int>(events_.size()) - 1;
}

void RaceDetector::WaitEvent(int lane, int event) {
  std::lock_guard<std::mutex> lock(mu_);
  GTS_DCHECK(event >= 0 && event < static_cast<int>(events_.size()));
  lanes_[lane].clock.Join(events_[static_cast<size_t>(event)]);
}

void RaceDetector::BarrierAcquire() {
  const int host = HostLane();
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t l = 0; l < lanes_.size(); ++l) {
    if (static_cast<int>(l) == host) continue;
    lanes_[host].clock.Join(lanes_[l].clock);
    lanes_[l].clock.Tick(l);
  }
  lanes_[host].clock.Tick(static_cast<size_t>(host));
}

void RaceDetector::BarrierRelease() {
  const int host = HostLane();
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t l = 0; l < lanes_.size(); ++l) {
    if (static_cast<int>(l) == host) continue;
    lanes_[l].clock.Join(lanes_[host].clock);
  }
  lanes_[host].clock.Tick(static_cast<size_t>(host));
}

void RaceDetector::OnPageStaged(int device, PageId pid, gpu::OpIndex op) {
  const int host = HostLane();
  const int lane = op == gpu::kNoOp ? host : StorageLane(device);
  if (lane != host) {
    // The host initiated the issue; the device write follows it.
    Join(lane, host);
    BeginOp(lane);
  }
  OnPageAccess(lane, kMmbufDomain, pid, /*write=*/true, op);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(lanes_[lane].clock);
  lanes_[lane].clock.Tick(static_cast<size_t>(lane));
  page_ready_[pid] = static_cast<int>(events_.size()) - 1;
}

void RaceDetector::OnPageDelivered(PageId pid) {
  const int host = HostLane();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_ready_.find(pid);
  if (it == page_ready_.end()) return;  // preloaded: no staging this run
  lanes_[host].clock.Join(events_[static_cast<size_t>(it->second)]);
}

RaceAccess RaceDetector::MakeAccess(int lane, AccessClass cls,
                                    gpu::OpIndex op, PageId page) const {
  RaceAccess a;
  a.lane = lanes_[static_cast<size_t>(lane)].name;
  a.stream_key = lanes_[static_cast<size_t>(lane)].stream_key;
  a.cls = cls;
  a.op = op;
  a.page = page;
  return a;
}

void RaceDetector::AccessLocked(int lane, int domain, uint64_t index,
                                uint32_t size, AccessClass cls,
                                gpu::OpIndex op, PageId page) {
  Cell& cell = shadow_[CellKey(domain, index)];
  const VectorClock& my_clock = lanes_[static_cast<size_t>(lane)].clock;

  for (int c = 0; c < 4; ++c) {
    const auto other_cls = static_cast<AccessClass>(c);
    if (!Conflicts(cls, other_cls)) continue;
    const std::vector<LaneAccess>& others = cell.cls[c];
    for (size_t l = 0; l < others.size(); ++l) {
      if (static_cast<int>(l) == lane) continue;  // program order
      const LaneAccess& la = others[l];
      if (la.time == 0) continue;
      if (la.time <= my_clock.Get(l)) continue;  // happens-before me
      ++races_detected_;
      uint64_t key = MixHash(14695981039346656037ull,
                             static_cast<uint64_t>(domain));
      key = MixHash(key, l);
      key = MixHash(key, la.op);
      key = MixHash(key, static_cast<uint64_t>(lane));
      key = MixHash(key, op);
      if (races_.size() < max_reported_ && race_keys_.insert(key).second) {
        Race race;
        race.domain = DomainName(domain);
        race.offset = domain == kMmbufDomain || domain >= 2000
                          ? index
                          : index * kGranule;
        race.size = size;
        race.first = MakeAccess(static_cast<int>(l), other_cls, la.op,
                                la.page);
        race.second = MakeAccess(lane, cls, op, page);
        races_.push_back(std::move(race));
      }
    }
  }

  std::vector<LaneAccess>& mine = cell.cls[static_cast<int>(cls)];
  if (mine.size() <= static_cast<size_t>(lane)) {
    mine.resize(static_cast<size_t>(lane) + 1);
  }
  mine[static_cast<size_t>(lane)] =
      LaneAccess{my_clock.Get(static_cast<size_t>(lane)), op, page};
}

void RaceDetector::OnWaAccess(int lane, int domain, uint64_t offset,
                              uint32_t size, AccessClass cls,
                              gpu::OpIndex op, PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  ++wa_accesses_;
  const uint64_t first = offset / kGranule;
  const uint64_t last = (offset + (size == 0 ? 1 : size) - 1) / kGranule;
  for (uint64_t g = first; g <= last; ++g) {
    AccessLocked(lane, domain, g, size, cls, op, page);
  }
}

void RaceDetector::OnPageAccess(int lane, int domain, PageId pid, bool write,
                                gpu::OpIndex op) {
  std::lock_guard<std::mutex> lock(mu_);
  AccessLocked(lane, domain, pid, /*size=*/0,
               write ? AccessClass::kPlainWrite : AccessClass::kPlainRead,
               op, kInvalidPageId);
}

uint64_t RaceDetector::wa_accesses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wa_accesses_;
}

uint64_t RaceDetector::races_detected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return races_detected_;
}

}  // namespace analysis
}  // namespace gts
