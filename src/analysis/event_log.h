// Lightweight sequence-numbered event logs that feed the ScheduleValidator.
//
// Two producers record into these logs during a run:
//   - PageCache (pin lifecycle: pinned / released / evicted / inserted),
//     from the dispatch loop and the stream worker threads;
//   - the gts::io layer (request lifecycle: submit at DeviceQueue::Submit,
//     issue at DeviceQueue::IssueNext, deliver when IoEngine::Acquire hands
//     the bytes to the engine), host-side only;
//   - the dispatch ReadyQueue (work-item lifecycle: enqueued when the pass
//     plan publishes an item, claimed when a stream worker pulls it).
//
// The logs are deliberately dumb: a mutex-guarded append with a per-log
// sequence number. Ordering semantics live in the validator
// (ScheduleValidator::CheckPinEvents / CheckIoEvents /
// CheckDispatchEvents); keeping the
// producers free of policy means a seeded test can synthesize any event
// sequence. This header stays light (no gpu/ or obs/ includes) so
// PageCache and DeviceQueue can depend on it without layering cycles.
#ifndef GTS_ANALYSIS_EVENT_LOG_H_
#define GTS_ANALYSIS_EVENT_LOG_H_

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace gts {
namespace analysis {

/// One PageCache pin-lifecycle event. kInvalidated marks a version
/// invalidation (gts::ingest published a newer page image): the cached
/// copy may no longer be pinned until a fresh kInserted re-admits the
/// page (the validator's I1 rule).
struct PinEvent {
  enum class Kind : uint8_t {
    kPinned,
    kReleased,
    kEvicted,
    kInserted,
    kInvalidated
  };
  Kind kind = Kind::kPinned;
  PageId pid = kInvalidPageId;
  uint64_t seq = 0;  ///< log-global order (assigned by the log)
};

/// One gts::io request-lifecycle event.
struct IoEvent {
  enum class Kind : uint8_t { kSubmit, kIssue, kDeliver };
  Kind kind = Kind::kSubmit;
  PageId pid = kInvalidPageId;
  uint64_t seq = 0;
};

/// One ready-queue work-item lifecycle event (work-stealing dispatch).
/// `item` is the queue-assigned work-item id (a page can fan out into one
/// item per GPU under Strategy-P, so pid alone is not a key). `claimer`
/// is the StreamKey of the worker that claimed the item; `stolen` marks a
/// claim that crossed the item's home stream/GPU.
struct DispatchEvent {
  enum class Kind : uint8_t { kEnqueued, kClaimed };
  Kind kind = Kind::kEnqueued;
  PageId pid = kInvalidPageId;
  uint64_t seq = 0;
  uint64_t item = 0;
  int claimer = -1;
  bool stolen = false;
};

/// Thread-safe appender; Take() drains (one validator read per run).
template <typename Event>
class EventLog {
 public:
  void Append(typename Event::Kind kind, PageId pid) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(Event{kind, pid, seq_++});
  }

  /// Appends a pre-filled event; the log overwrites `seq` with its own
  /// counter so callers can't break the log-global order.
  void Append(Event event) {
    std::lock_guard<std::mutex> lock(mu_);
    event.seq = seq_++;
    events_.push_back(event);
  }

  std::vector<Event> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Event> out = std::move(events_);
    events_.clear();
    return out;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

 private:
  std::mutex mu_;
  std::vector<Event> events_;
  uint64_t seq_ = 0;
};

using PinEventLog = EventLog<PinEvent>;
using IoEventLog = EventLog<IoEvent>;
using DispatchEventLog = EventLog<DispatchEvent>;

}  // namespace analysis
}  // namespace gts

#endif  // GTS_ANALYSIS_EVENT_LOG_H_
