#include "analysis/schedule_validator.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>

namespace gts {
namespace analysis {

void ScheduleValidator::AddViolation(RaceReport* report, const char* rule,
                                     gpu::OpIndex op,
                                     std::string detail) const {
  ++report->violations_detected;
  if (report->violations.size() < options_.max_reported) {
    report->violations.push_back(
        ScheduleViolation{rule, std::move(detail), op});
  }
}

void ScheduleValidator::Check(const gpu::ScheduleResult& schedule,
                              RaceReport* report) const {
  const double eps = options_.epsilon;
  const auto& ops = schedule.ops;
  report->validator_ran = true;

  struct Interval {
    double start;
    double end;
    gpu::OpIndex op;
  };
  std::map<std::pair<int, int>, std::vector<Interval>> serial;  // (type, idx)
  std::unordered_map<int, std::pair<double, gpu::OpIndex>> stream_tail;
  // Latest H2D end per (stream_key, page) for R4.
  std::map<std::pair<int, PageId>, std::pair<double, gpu::OpIndex>> h2d_end;
  double max_end = 0.0;
  double barrier_end = 0.0;
  gpu::OpIndex barrier_op = gpu::kNoOp;

  for (gpu::OpIndex i = 0; i < ops.size(); ++i) {
    const gpu::TimelineOp& op = ops[i];

    // R8: malformed op.
    ++report->schedule_checks;
    if (op.duration < 0.0 || op.queue_wait < 0.0 ||
        op.end < op.start - eps) {
      std::ostringstream os;
      os << "duration " << op.duration << ", queue_wait " << op.queue_wait
         << ", interval [" << op.start << ", " << op.end << "]";
      AddViolation(report, "malformed-op", i, os.str());
    }

    if (op.kind == gpu::OpKind::kBarrier) {
      // R5: the barrier dominates everything recorded before it.
      ++report->schedule_checks;
      if (op.start < max_end - eps) {
        std::ostringstream os;
        os << "barrier starts at " << op.start << " before an earlier op ends ("
           << max_end << ")";
        AddViolation(report, "barrier", i, os.str());
      }
      barrier_end = std::max(barrier_end, op.end);
      barrier_op = i;
      max_end = std::max(max_end, op.end);
      continue;
    }

    // R5 (continued): nothing recorded after a barrier starts before it.
    if (barrier_op != gpu::kNoOp) {
      ++report->schedule_checks;
      if (op.start < barrier_end - eps) {
        std::ostringstream os;
        os << "op starts at " << op.start << " before barrier #" << barrier_op
           << " ends (" << barrier_end << ")";
        AddViolation(report, "barrier", i, os.str());
      }
    }

    // R1: dependency order ("an event wait may not precede its record").
    for (gpu::OpIndex dep : {op.dep0, op.dep1}) {
      if (dep == gpu::kNoOp) continue;
      ++report->schedule_checks;
      if (dep >= i) {
        AddViolation(report, "dep-order", i,
                     "dependency #" + std::to_string(dep) +
                         " does not precede the op");
        continue;
      }
      if (op.start < ops[dep].end - eps) {
        std::ostringstream os;
        os << "op starts at " << op.start << " before dependency #" << dep
           << " ends (" << ops[dep].end << ")";
        AddViolation(report, "dep-order", i, os.str());
      }
    }

    // R3: program order within one stream.
    if (op.stream_key >= 0) {
      auto it = stream_tail.find(op.stream_key);
      if (it != stream_tail.end()) {
        ++report->schedule_checks;
        if (op.start < it->second.first - eps) {
          std::ostringstream os;
          os << "op on stream " << op.stream_key << " starts at " << op.start
             << " before previous op #" << it->second.second << " ends ("
             << it->second.first << ")";
          AddViolation(report, "stream-order", i, os.str());
        }
      }
      stream_tail[op.stream_key] = {op.end, i};
    }

    // R4: a kernel reads its page only after the page's H2D on the same
    // stream completed (cache-hit kernels have no matching H2D). Direct
    // fine-grained fetches gate their kernels exactly like whole-page
    // streams -- and must sit on a copy engine.
    if ((op.kind == gpu::OpKind::kH2DStream ||
         op.kind == gpu::OpKind::kH2DDirect) &&
        op.stream_key >= 0 && op.page != kInvalidPageId) {
      h2d_end[{op.stream_key, op.page}] = {op.end, i};
    }
    if (op.kind == gpu::OpKind::kH2DDirect) {
      ++report->schedule_checks;
      if (op.resource.type != gpu::ResourceId::Type::kCopyEngine) {
        AddViolation(report, "malformed-op", i,
                     "h2d-direct op priced off the copy engine");
      }
    }
    if (op.kind == gpu::OpKind::kKernel && op.stream_key >= 0 &&
        op.page != kInvalidPageId) {
      auto it = h2d_end.find({op.stream_key, op.page});
      if (it != h2d_end.end()) {
        ++report->schedule_checks;
        if (op.start < it->second.first - eps) {
          std::ostringstream os;
          os << "kernel for pid " << op.page << " starts at " << op.start
             << " before its transfer #" << it->second.second << " ends ("
             << it->second.first << ")";
          AddViolation(report, "kernel-after-h2d", i, os.str());
        }
      }
    }

    // R2: collect serial-resource intervals.
    if (op.resource.type == gpu::ResourceId::Type::kStorageDevice ||
        op.resource.type == gpu::ResourceId::Type::kCopyEngine) {
      serial[{static_cast<int>(op.resource.type), op.resource.index}]
          .push_back(Interval{op.start, op.end, i});
    }

    max_end = std::max(max_end, op.end);
  }

  // R2: no overlap on any serial resource.
  for (auto& [key, intervals] : serial) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    const char* what =
        key.first == static_cast<int>(gpu::ResourceId::Type::kCopyEngine)
            ? "copy engine"
            : "storage device";
    for (size_t k = 1; k < intervals.size(); ++k) {
      ++report->schedule_checks;
      if (intervals[k].start < intervals[k - 1].end - eps) {
        std::ostringstream os;
        os << what << " " << key.second << ": op #" << intervals[k].op
           << " [" << intervals[k].start << ", " << intervals[k].end
           << ") overlaps op #" << intervals[k - 1].op << " ["
           << intervals[k - 1].start << ", " << intervals[k - 1].end << ")";
        AddViolation(report, "serial-overlap", intervals[k].op, os.str());
      }
    }
  }
}

void ScheduleValidator::CheckPinEvents(const std::vector<PinEvent>& events,
                                       RaceReport* report) const {
  report->validator_ran = true;
  std::unordered_map<PageId, int64_t> active;
  // I1: pids whose cached copy was invalidated (gts::ingest publish) and
  // not yet re-admitted -- a pin in that window reads a stale page image.
  std::unordered_map<PageId, uint64_t> invalidated_at;
  for (const PinEvent& e : events) {
    ++report->schedule_checks;
    switch (e.kind) {
      case PinEvent::Kind::kPinned: {
        auto inv = invalidated_at.find(e.pid);
        if (inv != invalidated_at.end()) {
          AddViolation(report, "pin-after-invalidate", gpu::kNoOp,
                       "pid " + std::to_string(e.pid) +
                           " pinned after invalidation (event seq " +
                           std::to_string(inv->second) +
                           ") without a fresh insert (event seq " +
                           std::to_string(e.seq) + ")");
        }
        ++active[e.pid];
        break;
      }
      case PinEvent::Kind::kReleased:
        if (--active[e.pid] < 0) {
          AddViolation(report, "pin-lifetime", gpu::kNoOp,
                       "pid " + std::to_string(e.pid) +
                           " released without a matching pin (event seq " +
                           std::to_string(e.seq) + ")");
          active[e.pid] = 0;
        }
        break;
      case PinEvent::Kind::kEvicted:
        if (active[e.pid] > 0) {
          AddViolation(report, "pin-lifetime", gpu::kNoOp,
                       "pid " + std::to_string(e.pid) + " evicted with " +
                           std::to_string(active[e.pid]) +
                           " pin(s) outstanding (event seq " +
                           std::to_string(e.seq) + ")");
        }
        break;
      case PinEvent::Kind::kInserted:
        // A fresh image is admitted: pins are legal again (I1).
        invalidated_at.erase(e.pid);
        break;
      case PinEvent::Kind::kInvalidated:
        invalidated_at[e.pid] = e.seq;
        break;
    }
  }
}

void ScheduleValidator::CheckIoEvents(const std::vector<IoEvent>& events,
                                      RaceReport* report) const {
  report->validator_ran = true;
  enum class State : uint8_t { kIdle, kSubmitted, kIssued };
  std::unordered_map<PageId, State> state;
  for (const IoEvent& e : events) {
    ++report->schedule_checks;
    State& s = state[e.pid];
    switch (e.kind) {
      case IoEvent::Kind::kSubmit:
        if (s != State::kIdle) {
          AddViolation(report, "io-order", gpu::kNoOp,
                       "pid " + std::to_string(e.pid) +
                           " re-submitted while a request is outstanding "
                           "(event seq " +
                           std::to_string(e.seq) + ")");
        }
        s = State::kSubmitted;
        break;
      case IoEvent::Kind::kIssue:
        if (s != State::kSubmitted) {
          AddViolation(report, "io-order", gpu::kNoOp,
                       "pid " + std::to_string(e.pid) +
                           " issued without a pending submit (event seq " +
                           std::to_string(e.seq) + ")");
        }
        s = State::kIssued;
        break;
      case IoEvent::Kind::kDeliver:
        if (s != State::kIssued) {
          AddViolation(report, "io-order", gpu::kNoOp,
                       "pid " + std::to_string(e.pid) +
                           " completion delivered before device-queue issue "
                           "(event seq " +
                           std::to_string(e.seq) + ")");
        }
        s = State::kIdle;
        break;
    }
  }
  // Requests still in flight at run end (failed pass cleanup) are not
  // violations: only *ordering* is checked.
}

void ScheduleValidator::CheckDispatchEvents(
    const std::vector<DispatchEvent>& events, RaceReport* report) const {
  report->validator_ran = true;
  // Per work-item id: 0 = never enqueued, 1 = enqueued, 2 = claimed.
  std::unordered_map<uint64_t, uint8_t> state;
  for (const DispatchEvent& e : events) {
    ++report->schedule_checks;
    uint8_t& s = state[e.item];
    switch (e.kind) {
      case DispatchEvent::Kind::kEnqueued:
        if (s != 0) {
          AddViolation(report, "claim-unique", gpu::kNoOp,
                       "work item " + std::to_string(e.item) + " (pid " +
                           std::to_string(e.pid) +
                           ") enqueued twice (event seq " +
                           std::to_string(e.seq) + ")");
        }
        s = 1;
        break;
      case DispatchEvent::Kind::kClaimed:
        if (s == 0) {
          AddViolation(report, "claim-unique", gpu::kNoOp,
                       "work item " + std::to_string(e.item) + " (pid " +
                           std::to_string(e.pid) +
                           ") claimed without a prior enqueue (event seq " +
                           std::to_string(e.seq) + ")");
        } else if (s == 2) {
          AddViolation(report, "claim-unique", gpu::kNoOp,
                       "work item " + std::to_string(e.item) + " (pid " +
                           std::to_string(e.pid) +
                           ") claimed twice (stream key " +
                           std::to_string(e.claimer) + ", event seq " +
                           std::to_string(e.seq) + ")");
        }
        s = 2;
        break;
    }
  }
  // Items enqueued but never claimed at run end (failed pass teardown)
  // are not violations: a worker crash must not cascade into R9 noise.
}

void ScheduleValidator::CheckJobIsolation(const gpu::ScheduleResult& schedule,
                                          RaceReport* report) const {
  const auto& ops = schedule.ops;
  report->validator_ran = true;
  for (gpu::OpIndex i = 0; i < ops.size(); ++i) {
    const gpu::TimelineOp& op = ops[i];
    if (op.job < 0) continue;
    for (gpu::OpIndex dep : {op.dep0, op.dep1}) {
      if (dep == gpu::kNoOp || dep >= ops.size()) continue;
      ++report->schedule_checks;
      if (ops[dep].job >= 0 && ops[dep].job != op.job) {
        AddViolation(report, "job-isolation", i,
                     "op of job " + std::to_string(op.job) +
                         " depends on op #" + std::to_string(dep) +
                         " of job " + std::to_string(ops[dep].job));
      }
    }
  }
}

}  // namespace analysis
}  // namespace gts
