// Knobs for the gts::analysis layer (race detection + schedule validation).
//
// Two independent checkers share this block:
//
//   - The vector-clock race detector is *compiled* behind the
//     -DGTS_RACE_CHECK build knob (GTS_RACE_CHECK_ENABLED); when the knob
//     is OFF the instrumentation in KernelContext and the engine does not
//     exist and `race_check` is ignored. When compiled in, the detector is
//     a pure observer: it records no timeline ops, so the schedule (and
//     the exported trace) is byte-identical with it on or off.
//   - The ScheduleValidator is always compiled (it is pure post-processing
//     over gpu::ScheduleResult and the pin/io event logs) and runs after
//     every Run()/RunPass() unless `validate_schedule` is false.
//
// Both are report-only by default: findings land in
// RunMetrics::analysis (a RaceReport) and the `analysis.*` counters. The
// `fail_on_*` switches turn findings into a FailedPrecondition run error
// for tests and CI.
#ifndef GTS_ANALYSIS_ANALYSIS_OPTIONS_H_
#define GTS_ANALYSIS_ANALYSIS_OPTIONS_H_

#include <cstdint>

// The build knob: -DGTS_RACE_CHECK=ON defines GTS_RACE_CHECK_ENABLED=1 on
// the whole target (see the top-level CMakeLists). Default to "compiled
// out" so translation units that do not go through CMake still build.
#ifndef GTS_RACE_CHECK_ENABLED
#define GTS_RACE_CHECK_ENABLED 0
#endif

namespace gts {
namespace analysis {

/// True when this binary was built with -DGTS_RACE_CHECK=ON.
inline constexpr bool kRaceCheckCompiled = GTS_RACE_CHECK_ENABLED != 0;

struct AnalysisOptions {
  /// Run the happens-before race detector (no-op unless the binary was
  /// built with -DGTS_RACE_CHECK=ON).
  bool race_check = true;
  /// Replay every run's ScheduleResult + event logs through the
  /// ScheduleValidator.
  bool validate_schedule = true;
  /// Turn detected races into a FailedPrecondition Run() error.
  bool fail_on_race = false;
  /// Turn schedule violations into a FailedPrecondition Run() error.
  bool fail_on_violation = false;
  /// Turn lock-order violations (GTS_SYNC_CHECK builds; harvested from
  /// the sync::LockRegistry at run finalization) into a Run() error.
  bool fail_on_lock_violation = false;
  /// Cap on per-run *stored* diagnostics (races and violations each);
  /// the detected-counts keep counting past the cap.
  uint32_t max_reported = 64;
};

}  // namespace analysis
}  // namespace gts

#endif  // GTS_ANALYSIS_ANALYSIS_OPTIONS_H_
