// A vector-clock happens-before race detector over *simulated* time.
//
// Host TSan can only catch races whose interleaving actually manifests on
// host threads; the discrete-event scheduler routinely serializes
// logically-concurrent kernels (inline execution runs them back to back),
// so logical races hide. This detector (FastTrack / Barracuda / iGUARD
// lineage, see PAPERS.md) re-derives concurrency from the *schedule
// edges* the engine records, independent of host execution order:
//
//   Lanes (one vector clock each):
//     host            the engine's dispatch loop
//     gpu<g>.stream<s> one per (GPU, stream)
//     gpu<g>.copy     the GPU's copy engine (serial resource)
//     storage<d>      one per storage device (serial resource)
//     cpu<l>          host-CPU co-processing worker lanes
//
//   Edge taxonomy:
//     issue        op lane joins host when the host issues work on it
//     stream order  per-lane program order (CUDA in-stream ordering)
//     copy fusion   an H2D on a stream fuses the stream and copy-engine
//                   clocks: the copy engine serializes transfers, and the
//                   stream's next kernel waits for its transfer
//     event        record/wait snapshots (page staged -> page delivered)
//     barrier      BSP level boundaries: BarrierAcquire joins every lane
//                  into host, BarrierRelease fans host back out
//
//   Shadow state:
//     WA domains  one cell per 4-byte granule per WA replica
//                 ("gpu<g>.wa", "cpu.wa"); wider accesses check each
//                 granule they cover
//     page domains one cell per page for MMBuf ("mmbuf") and the per-GPU
//                 page caches ("gpu<g>.cache")
//
// Two accesses race iff they touch the same cell, at least one is a
// write, they are not both atomic, and neither happens-before the other.
//
// The detector is a pure observer: it records no timeline ops and never
// perturbs the schedule; builds with -DGTS_RACE_CHECK=OFF compile the
// instrumentation out entirely (this class still compiles for unit
// tests). All entry points are mutex-guarded so stream worker threads may
// report accesses concurrently; attribution is to *logical* lanes, so the
// verdict is identical in inline and threaded execution modes.
#ifndef GTS_ANALYSIS_RACE_DETECTOR_H_
#define GTS_ANALYSIS_RACE_DETECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/race_report.h"
#include "analysis/vector_clock.h"
#include "gpu/schedule.h"
#include "graph/types.h"

namespace gts {
namespace analysis {

class RaceDetector;

/// Stamped into KernelContext by the engine so the instrumented Wa*
/// helpers know where an access lands: which detector, logical lane, WA
/// shadow domain, enclosing timeline op and topology page.
struct AccessSite {
  RaceDetector* detector = nullptr;
  int lane = 0;
  int domain = 0;
  gpu::OpIndex op = gpu::kNoOp;
  PageId page = kInvalidPageId;
};

class RaceDetector {
 public:
  /// Shadow-domain ids. WA replicas use WaDomain()/kCpuWaDomain; page
  /// cells use kMmbufDomain/CacheDomain().
  static int WaDomain(int gpu) { return gpu; }
  static constexpr int kCpuWaDomain = 1000;
  static constexpr int kMmbufDomain = 1001;
  static int CacheDomain(int gpu) { return 2000 + gpu; }
  static std::string DomainName(int domain);

  /// Shadow granularity for WA domains, in bytes.
  static constexpr uint32_t kGranule = 4;

  explicit RaceDetector(uint32_t max_reported = 64)
      : max_reported_(max_reported) {}

  // ------------------------------------------------------------- lifecycle

  /// Clears clocks, shadow state and findings for a new run.
  void BeginRun();

  /// Fills RaceAccess::sim_time on every stored race from the simulated
  /// op start times (call after ScheduleSimulator::Run).
  void ResolveTimestamps(const gpu::ScheduleResult& schedule);

  /// Moves the findings out; the detector stays usable (BeginRun next).
  RaceReport TakeReport();

  // --------------------------------------------------------- lane registry
  // Lanes are created on first use; ids are stable for the detector's
  // lifetime. `stream_key` mirrors the simulator's encoding so
  // diagnostics line up with the exported trace.

  int HostLane();
  int StreamLane(int gpu, int stream, int stream_key);
  int CopyLane(int gpu);
  int StorageLane(int device);
  int CpuLane(int lane, int stream_key);

  // -------------------------------------------------------- schedule edges

  /// A new logical operation begins on `lane` (advances its component).
  void BeginOp(int lane);
  /// Everything `src` has done happens-before `dst`'s next step.
  void Join(int dst, int src);
  /// Serial-resource fusion (an H2D op belongs to both its stream and the
  /// copy engine): both lanes see each other's past.
  void Fuse(int a, int b);
  /// Snapshots `lane`'s clock; WaitEvent(l, id) makes l inherit it.
  int RecordEvent(int lane);
  void WaitEvent(int lane, int event);
  /// BSP level boundary: host joins every lane / every lane joins host.
  void BarrierAcquire();
  void BarrierRelease();

  // ------------------------------------------- MMBuf staging (gts::io)

  /// A storage device staged page `pid` into MMBuf under recorded op
  /// `op` (kNoOp for zero-cost devices: attributed to the host lane).
  /// Registers the page's "ready" event for later deliveries.
  void OnPageStaged(int device, PageId pid, gpu::OpIndex op);
  /// IoEngine::Acquire handed `pid`'s bytes to the host: the host joins
  /// the page's staging event (no-op for preloaded pages with no event).
  void OnPageDelivered(PageId pid);

  // --------------------------------------------------------------- accesses

  /// A WA access of `size` bytes at byte `offset` into domain's replica
  /// buffer. Checks every 4-byte granule the access covers.
  void OnWaAccess(int lane, int domain, uint64_t offset, uint32_t size,
                  AccessClass cls, gpu::OpIndex op, PageId page);
  /// A whole-page access (MMBuf or cache domains).
  void OnPageAccess(int lane, int domain, PageId pid, bool write,
                    gpu::OpIndex op);

  uint64_t wa_accesses() const;
  uint64_t races_detected() const;

 private:
  struct Lane {
    std::string name;
    int stream_key = -1;
    VectorClock clock;
  };

  /// Last access per lane in one access class of one cell.
  struct LaneAccess {
    uint64_t time = 0;  ///< 0 = never accessed
    gpu::OpIndex op = gpu::kNoOp;
    PageId page = kInvalidPageId;
  };
  struct Cell {
    // Indexed by static_cast<int>(AccessClass); lanes resized on demand.
    std::vector<LaneAccess> cls[4];
  };

  int LaneLocked(uint64_t key, std::string name, int stream_key);
  void AccessLocked(int lane, int domain, uint64_t index, uint32_t size,
                    AccessClass cls, gpu::OpIndex op, PageId page);
  RaceAccess MakeAccess(int lane, AccessClass cls, gpu::OpIndex op,
                        PageId page) const;

  mutable std::mutex mu_;
  uint32_t max_reported_;

  std::vector<Lane> lanes_;
  std::unordered_map<uint64_t, int> lane_ids_;

  std::vector<VectorClock> events_;
  std::unordered_map<PageId, int> page_ready_;  ///< pid -> staging event

  // Shadow cells keyed by (domain, granule-or-page index).
  std::unordered_map<uint64_t, Cell> shadow_;

  std::vector<Race> races_;
  std::unordered_set<uint64_t> race_keys_;  ///< dedup (lanes x ops x cell)
  uint64_t races_detected_ = 0;
  uint64_t wa_accesses_ = 0;
};

}  // namespace analysis
}  // namespace gts

#endif  // GTS_ANALYSIS_RACE_DETECTOR_H_
