#include "analysis/race_report.h"

#include <sstream>

namespace gts {
namespace analysis {

std::string_view AccessClassName(AccessClass cls) {
  switch (cls) {
    case AccessClass::kPlainRead:
      return "plain-read";
    case AccessClass::kPlainWrite:
      return "plain-write";
    case AccessClass::kAtomicRead:
      return "atomic-read";
    case AccessClass::kAtomicWrite:
      return "atomic-write";
  }
  return "?";
}

namespace {

void AppendAccess(std::ostringstream& os, const RaceAccess& a) {
  os << a.lane << " (stream_key " << a.stream_key << ") "
     << AccessClassName(a.cls);
  if (a.page != kInvalidPageId) os << " while processing pid " << a.page;
  if (a.op != gpu::kNoOp) os << " in op #" << a.op;
  if (a.sim_time >= 0.0) os << " @" << a.sim_time << "s";
}

}  // namespace

std::string Race::ToString() const {
  std::ostringstream os;
  os << "race on " << domain << "+" << offset;
  if (size > 0) os << " (" << size << "B)";
  os << ": ";
  AppendAccess(os, first);
  os << "  vs  ";
  AppendAccess(os, second);
  return os.str();
}

std::string ScheduleViolation::ToString() const {
  std::ostringstream os;
  os << "schedule violation [" << rule << "]";
  if (op != gpu::kNoOp) os << " op #" << op;
  os << ": " << detail;
  return os.str();
}

std::string LockOrderViolation::ToString() const {
  std::ostringstream os;
  os << "lock violation [" << rule << "] " << first_site << " -> "
     << second_site << ": " << detail;
  return os.str();
}

void RaceReport::Accumulate(const RaceReport& other) {
  race_check_ran |= other.race_check_ran;
  validator_ran |= other.validator_ran;
  sync_check_ran |= other.sync_check_ran;
  wa_accesses += other.wa_accesses;
  races_detected += other.races_detected;
  schedule_checks += other.schedule_checks;
  violations_detected += other.violations_detected;
  lock_acquisitions += other.lock_acquisitions;
  lock_order_violations += other.lock_order_violations;
  races.insert(races.end(), other.races.begin(), other.races.end());
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
  lock_violations.insert(lock_violations.end(), other.lock_violations.begin(),
                         other.lock_violations.end());
}

std::string RaceReport::ToString() const {
  std::ostringstream os;
  os << "analysis: " << races_detected << " race(s), " << violations_detected
     << " schedule violation(s), " << lock_order_violations
     << " lock-order violation(s), " << wa_accesses
     << " instrumented accesses, " << schedule_checks << " schedule checks, "
     << lock_acquisitions << " tracked acquisitions\n";
  for (const Race& r : races) os << "  " << r.ToString() << "\n";
  for (const ScheduleViolation& v : violations) {
    os << "  " << v.ToString() << "\n";
  }
  for (const LockOrderViolation& v : lock_violations) {
    os << "  " << v.ToString() << "\n";
  }
  return os.str();
}

}  // namespace analysis
}  // namespace gts
