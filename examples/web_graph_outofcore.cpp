// Out-of-core web-graph traversal: the headline capability of the paper --
// processing a graph whose topology exceeds main memory by streaming
// slotted pages from (simulated) PCI-E SSDs.
//
// Builds a UK2007-shaped web graph, stores it on two SSDs with an MMBuf of
// only 20% of the graph, and runs BFS reachability and SSSP from a seed
// page, reporting the storage-level I/O the run generated.
#include <cmath>
#include <cstdio>

#include "algorithms/bfs.h"
#include "algorithms/sssp.h"
#include "common/units.h"
#include "core/engine.h"
#include "graph/csr_graph.h"
#include "graph/datasets.h"
#include "storage/page_builder.h"
#include "storage/page_store.h"

int main() {
  using namespace gts;

  auto edges = GenerateRealDataset(RealDataset::kUk2007);
  if (!edges.ok()) {
    std::fprintf(stderr, "%s\n", edges.status().ToString().c_str());
    return 1;
  }
  CsrGraph csr = CsrGraph::FromEdgeList(*edges);
  auto paged = BuildPagedGraph(csr, PageConfig::Small22());
  if (!paged.ok()) {
    std::fprintf(stderr, "%s\n", paged.status().ToString().c_str());
    return 1;
  }

  const uint64_t buffer = paged->TotalTopologyBytes() / 5;
  auto store = MakeSsdStore(&*paged, /*n=*/2, buffer);
  std::printf("UK2007-shaped web graph: %llu pages, %llu links\n",
              (unsigned long long)csr.num_vertices(),
              (unsigned long long)csr.num_edges());
  std::printf("topology %s on 2 simulated PCI-E SSDs; MMBuf %s (20%%)\n",
              FormatBytes(paged->TotalTopologyBytes()).c_str(),
              FormatBytes(buffer).c_str());

  MachineConfig machine = MachineConfig::PaperScaled(2);
  GtsEngine engine(&*paged, store.get(), machine, GtsOptions{});

  VertexId seed = 0;
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    if (csr.out_degree(v) > csr.out_degree(seed)) seed = v;
  }

  // --- Reachability crawl (BFS) --------------------------------------
  auto bfs = RunBfsGts(engine, seed);
  if (!bfs.ok()) {
    std::fprintf(stderr, "%s\n", bfs.status().ToString().c_str());
    return 1;
  }
  uint64_t reached = 0;
  for (uint16_t level : bfs->levels) {
    reached += level != BfsKernel::kUnvisited;
  }
  std::printf("\nBFS crawl from page %llu:\n", (unsigned long long)seed);
  std::printf("  %llu pages reachable, depth %d, simulated %s\n",
              (unsigned long long)reached, bfs->report.metrics.levels,
              FormatSeconds(bfs->report.metrics.sim_seconds).c_str());
  std::printf("  I/O: %llu device reads (%s), %llu MMBuf hits, "
              "device cache hit rate %.0f%%\n",
              (unsigned long long)bfs->report.metrics.io.device_reads,
              FormatBytes(bfs->report.metrics.io.bytes_read).c_str(),
              (unsigned long long)bfs->report.metrics.io.buffer_hits,
              100.0 * bfs->report.metrics.cache_hit_rate());

  // --- Weighted shortest paths (SSSP) ---------------------------------
  auto sssp = RunSsspGts(engine, seed);
  if (!sssp.ok()) {
    std::fprintf(stderr, "%s\n", sssp.status().ToString().c_str());
    return 1;
  }
  double max_finite = 0.0;
  uint64_t finite = 0;
  for (double d : sssp->distances) {
    if (!std::isinf(d)) {
      ++finite;
      max_finite = std::max(max_finite, d);
    }
  }
  std::printf("\nSSSP from page %llu:\n", (unsigned long long)seed);
  std::printf("  %llu pages with finite distance, max distance %.1f, "
              "%d relaxation rounds, simulated %s\n",
              (unsigned long long)finite, max_finite, sssp->report.metrics.levels,
              FormatSeconds(sssp->report.metrics.sim_seconds).c_str());
  std::printf("  storage busy %s vs PCI-E transfer busy %s\n",
              FormatSeconds(sssp->report.metrics.storage_busy).c_str(),
              FormatSeconds(sssp->report.metrics.transfer_busy).c_str());
  return 0;
}
