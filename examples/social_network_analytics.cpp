// Social-network analytics: influence ranking and community structure on a
// Twitter-shaped graph -- the workload the paper's introduction motivates.
//
// Runs PageRank for influencer scores and connected components (on the
// symmetrized graph) for community sizes, all through the GTS engine on
// the simulated 2-GPU machine.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "algorithms/pagerank.h"
#include "algorithms/wcc.h"
#include "common/units.h"
#include "core/engine.h"
#include "graph/csr_graph.h"
#include "graph/datasets.h"
#include "storage/page_builder.h"
#include "storage/page_store.h"

int main() {
  using namespace gts;

  auto edges = GenerateRealDataset(RealDataset::kTwitter);
  if (!edges.ok()) {
    std::fprintf(stderr, "%s\n", edges.status().ToString().c_str());
    return 1;
  }
  std::printf("Twitter-shaped graph: %llu accounts, %llu follows\n",
              (unsigned long long)edges->num_vertices(),
              (unsigned long long)edges->num_edges());

  MachineConfig machine = MachineConfig::PaperScaled(2);

  // --- Influence: PageRank over the follow graph --------------------
  {
    CsrGraph csr = CsrGraph::FromEdgeList(*edges);
    auto paged = BuildPagedGraph(csr, PageConfig::Small22());
    if (!paged.ok()) return 1;
    auto store = MakeInMemoryStore(&*paged);
    GtsEngine engine(&*paged, store.get(), machine, GtsOptions{});
    auto pr = RunPageRankGts(engine, {.iterations = 10});
    if (!pr.ok()) {
      std::fprintf(stderr, "%s\n", pr.status().ToString().c_str());
      return 1;
    }

    std::vector<VertexId> order(csr.num_vertices());
    for (VertexId v = 0; v < order.size(); ++v) order[v] = v;
    std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                      [&](VertexId a, VertexId b) {
                        return pr->ranks[a] > pr->ranks[b];
                      });
    std::printf("\nTop influencers (PageRank, 10 iterations, %s simulated):\n",
                FormatSeconds(pr->report.metrics.sim_seconds).c_str());
    for (int i = 0; i < 10; ++i) {
      std::printf("  %2d. account %-8llu rank %.6f  followers %llu\n", i + 1,
                  (unsigned long long)order[i], pr->ranks[order[i]],
                  (unsigned long long)csr.out_degree(order[i]));
    }
  }

  // --- Communities: WCC on the symmetrized graph ---------------------
  {
    EdgeList sym = SymmetrizeEdges(*edges);
    CsrGraph csr = CsrGraph::FromEdgeList(sym);
    auto paged = BuildPagedGraph(csr, PageConfig::Small22());
    if (!paged.ok()) return 1;
    auto store = MakeInMemoryStore(&*paged);
    GtsEngine engine(&*paged, store.get(), machine, GtsOptions{});
    auto cc = RunWccGts(engine);
    if (!cc.ok()) {
      std::fprintf(stderr, "%s\n", cc.status().ToString().c_str());
      return 1;
    }
    std::map<uint64_t, uint64_t> sizes;
    for (uint64_t label : cc->labels) ++sizes[label];
    std::vector<uint64_t> by_size;
    for (const auto& [label, count] : sizes) by_size.push_back(count);
    std::sort(by_size.rbegin(), by_size.rend());
    std::printf("\nCommunities (weak components, %d propagation rounds, %s "
                "simulated):\n",
                cc->iterations, FormatSeconds(cc->report.metrics.sim_seconds).c_str());
    std::printf("  %zu components; largest: %llu accounts (%.1f%%)\n",
                sizes.size(), (unsigned long long)by_size.front(),
                100.0 * static_cast<double>(by_size.front()) /
                    static_cast<double>(csr.num_vertices()));
    std::printf("  isolated/small (<10 accounts): %zu components\n",
                static_cast<size_t>(std::count_if(
                    by_size.begin(), by_size.end(),
                    [](uint64_t s) { return s < 10; })));
  }
  return 0;
}
