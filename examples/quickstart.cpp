// Quickstart: generate a small R-MAT graph, build slotted pages, run BFS
// and PageRank through the GTS engine, and print results plus the
// simulated-machine metrics.
//
//   ./quickstart [scale] [edge_factor]
#include <cstdio>
#include <cstdlib>

#include "algorithms/bfs.h"
#include "algorithms/pagerank.h"
#include "common/units.h"
#include "core/engine.h"
#include "graph/csr_graph.h"
#include "graph/rmat_generator.h"
#include "storage/page_builder.h"
#include "storage/page_store.h"

int main(int argc, char** argv) {
  using namespace gts;

  // 1. Generate a graph (or load your own with ReadEdgeListBinary/Text).
  RmatParams params;
  params.scale = argc > 1 ? std::atoi(argv[1]) : 14;
  params.edge_factor = argc > 2 ? std::atof(argv[2]) : 16;
  auto edges = GenerateRmat(params);
  if (!edges.ok()) {
    std::fprintf(stderr, "generate: %s\n", edges.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %llu vertices, %llu edges\n",
              (unsigned long long)edges->num_vertices(),
              (unsigned long long)edges->num_edges());

  // 2. Build the slotted-page representation (Section 2 of the paper).
  CsrGraph csr = CsrGraph::FromEdgeList(*edges);
  auto paged = BuildPagedGraph(csr, PageConfig::Small22());
  if (!paged.ok()) {
    std::fprintf(stderr, "pages: %s\n", paged.status().ToString().c_str());
    return 1;
  }
  std::printf("pages: %zu small, %zu large (%s topology)\n",
              paged->num_small_pages(), paged->num_large_pages(),
              FormatBytes(paged->TotalTopologyBytes()).c_str());

  // 3. Pick storage (in-memory here; MakeSsdStore for out-of-core) and a
  //    machine (the paper's 2-GPU workstation at 1/1024 scale).
  auto store = MakeInMemoryStore(&*paged);
  MachineConfig machine = MachineConfig::PaperScaled(/*num_gpus=*/2);
  GtsEngine engine(&*paged, store.get(), machine, GtsOptions{});

  // 4. BFS from the highest-degree vertex.
  VertexId source = 0;
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    if (csr.out_degree(v) > csr.out_degree(source)) source = v;
  }
  auto bfs = RunBfsGts(engine, source);
  if (!bfs.ok()) {
    std::fprintf(stderr, "bfs: %s\n", bfs.status().ToString().c_str());
    return 1;
  }
  uint64_t reached = 0;
  for (uint16_t level : bfs->levels) {
    reached += level != BfsKernel::kUnvisited;
  }
  std::printf("\nBFS from v%llu: %llu vertices reached in %d levels\n",
              (unsigned long long)source, (unsigned long long)reached,
              bfs->report.metrics.levels);
  std::printf("  simulated time: %s | pages streamed: %llu | cache hits: "
              "%.0f%%\n",
              FormatSeconds(bfs->report.metrics.sim_seconds).c_str(),
              (unsigned long long)bfs->report.metrics.pages_streamed,
              100.0 * bfs->report.metrics.cache_hit_rate());

  // 5. Ten iterations of PageRank.
  auto pr = RunPageRankGts(engine, {.iterations = 10});
  if (!pr.ok()) {
    std::fprintf(stderr, "pagerank: %s\n", pr.status().ToString().c_str());
    return 1;
  }
  VertexId top = 0;
  for (VertexId v = 0; v < pr->ranks.size(); ++v) {
    if (pr->ranks[v] > pr->ranks[top]) top = v;
  }
  std::printf("\nPageRank (10 iterations): top vertex v%llu with rank %.6f\n",
              (unsigned long long)top, pr->ranks[top]);
  std::printf("  simulated time: %s | transfer busy: %s | kernel busy: %s\n",
              FormatSeconds(pr->report.metrics.sim_seconds).c_str(),
              FormatSeconds(pr->report.metrics.transfer_busy).c_str(),
              FormatSeconds(pr->report.metrics.kernel_busy).c_str());
  return 0;
}
