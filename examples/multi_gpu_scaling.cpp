// Multi-GPU strategies (Section 4): demonstrates Strategy-P's speedup and
// Strategy-S's capacity scaling on the simulated machine.
//
// Sweeps 1/2/4 GPUs for PageRank under both strategies, then shows the
// paper's RMAT32 situation: a WA that fits no single GPU, where only
// Strategy-S can run at all.
#include <cstdio>

#include "algorithms/pagerank.h"
#include "common/units.h"
#include "core/engine.h"
#include "graph/csr_graph.h"
#include "graph/rmat_generator.h"
#include "storage/page_builder.h"
#include "storage/page_store.h"

namespace {

double RunSeconds(const gts::PagedGraph& paged, gts::PageStore* store,
                  int gpus, gts::Strategy strategy, gts::Status* status) {
  gts::GtsOptions opts;
  opts.strategy = strategy;
  gts::MachineConfig machine = gts::MachineConfig::PaperScaled(gpus);
  gts::GtsEngine engine(&paged, store, machine, opts);
  auto result = RunPageRankGts(engine, {.iterations = 5});
  if (!result.ok()) {
    *status = result.status();
    return -1.0;
  }
  *status = gts::Status::OK();
  return result->report.metrics.sim_seconds;
}

}  // namespace

int main() {
  using namespace gts;

  RmatParams params;
  params.scale = 18;
  params.edge_factor = 16;
  EdgeList edges = std::move(GenerateRmat(params)).ValueOrDie();
  CsrGraph csr = CsrGraph::FromEdgeList(edges);
  PagedGraph paged =
      std::move(BuildPagedGraph(csr, PageConfig::Small22())).ValueOrDie();
  auto store = MakeInMemoryStore(&paged);

  std::printf("PageRank x5 on RMAT%d (%llu vertices, %llu edges)\n",
              params.scale, (unsigned long long)csr.num_vertices(),
              (unsigned long long)csr.num_edges());
  std::printf("\n%-6s  %-14s  %-14s\n", "#GPUs", "Strategy-P", "Strategy-S");
  double base_p = 0.0;
  for (int gpus : {1, 2, 4}) {
    Status sp;
    Status ss;
    const double tp = RunSeconds(paged, store.get(), gpus,
                                 Strategy::kPerformance, &sp);
    const double ts = RunSeconds(paged, store.get(), gpus,
                                 Strategy::kScalability, &ss);
    if (gpus == 1) base_p = tp;
    char p_cell[64];
    char s_cell[64];
    if (tp >= 0) {
      std::snprintf(p_cell, sizeof(p_cell), "%s (%.2fx)",
                    FormatSeconds(tp).c_str(), base_p / tp);
    } else {
      std::snprintf(p_cell, sizeof(p_cell), "%s",
                    std::string(StatusCodeToString(sp.code())).c_str());
    }
    if (ts >= 0) {
      std::snprintf(s_cell, sizeof(s_cell), "%s (%.2fx)",
                    FormatSeconds(ts).c_str(), base_p / ts);
    } else {
      std::snprintf(s_cell, sizeof(s_cell), "%s",
                    std::string(StatusCodeToString(ss.code())).c_str());
    }
    std::printf("%-6d  %-14s  %-14s\n", gpus, p_cell, s_cell);
  }
  std::printf("\nStrategy-P splits the page stream: near-linear speedup.\n"
              "Strategy-S replicates it: capacity grows, speed does not "
              "(Section 4.2).\n");

  // --- The RMAT32 situation: WA larger than any single GPU -----------
  RmatParams big;
  big.scale = 21;  // 2M vertices -> 8 MiB PageRank WA per... x4 = no fit
  big.edge_factor = 4;
  EdgeList big_edges = std::move(GenerateRmat(big)).ValueOrDie();
  CsrGraph big_csr = CsrGraph::FromEdgeList(big_edges);
  PagedGraph big_paged =
      std::move(BuildPagedGraph(big_csr, PageConfig::Big33())).ValueOrDie();
  auto big_store = MakeInMemoryStore(&big_paged);

  MachineConfig tight = MachineConfig::PaperScaled(2);
  tight.device_memory = 6 * kMiB;  // PageRank WA is 8 MiB: no single fit
  std::printf("\nWA %s vs %s per GPU (the paper's RMAT32 situation):\n",
              FormatBytes(big_csr.num_vertices() * 4).c_str(),
              FormatBytes(tight.device_memory).c_str());
  for (Strategy strategy :
       {Strategy::kPerformance, Strategy::kScalability}) {
    GtsOptions opts;
    opts.strategy = strategy;
    opts.num_streams = 8;  // leave room for the WA chunk next to SP/LPBufs
    GtsEngine engine(&big_paged, big_store.get(), tight, opts);
    auto result = RunPageRankGts(engine, {.iterations = 2});
    if (result.ok()) {
      std::printf("  %-22s OK: %s simulated\n",
                  std::string(StrategyName(strategy)).c_str(),
                  FormatSeconds(result->report.metrics.sim_seconds).c_str());
    } else {
      std::printf("  %-22s %s\n", std::string(StrategyName(strategy)).c_str(),
                  result.status().ToString().c_str());
    }
  }
  return 0;
}
